// The dark side of "rich in information": a correlation power analysis that
// recovers the full AES key from the on-chip sensor's own traces.
//
// The paper's framework assumes "the analysis module running in collecting
// the EM measurement and processing the data is trusted" (Sec. II). This
// example shows why that assumption is load-bearing: an adversary with
// access to the sensor stream needs only a few thousand encryptions of
// known ciphertexts to walk away with the key. Deployments must treat the
// sensor pads (Sensor In / Sensor Out, Fig. 3) as part of the trust
// boundary.
#include <cstdio>

#include "attack/cpa.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

int main() {
  sim::ChipConfig config = sim::make_default_config();
  config.fixed_challenge_workload = false;  // normal varied traffic
  sim::Chip chip{config};
  const auto true_k10 = aes::expand_key(config.key)[10];

  constexpr std::size_t kWindows = 120;
  std::printf("capturing %zu sensor windows (%zu encryptions)...\n", kWindows,
              kWindows * 42);

  const auto captures = sim::CaptureEngine::shared().capture_batch(
      chip, sim::Pickup::kOnChipSensor, kWindows, 0);
  std::vector<std::vector<aes::Block>> ciphertexts;
  for (std::uint64_t w = 0; w < kWindows; ++w) {
    std::vector<aes::Block> cts;
    for (const auto& pt : chip.window_plaintexts(w)) {
      cts.push_back(aes::encrypt(config.key, pt));  // attacker observes outputs
    }
    ciphertexts.push_back(std::move(cts));
  }

  const auto segments = attack::slice_encryptions(
      captures, ciphertexts, aes::kCyclesPerEncryption * config.clock.samples_per_cycle);
  std::printf("running last-round CPA over %zu encryption traces...\n\n", segments.size());
  const auto result = attack::last_round_cpa(segments);

  std::printf("byte  guess  truth  |rho|   rank-of-truth\n");
  for (std::size_t j = 0; j < 16; ++j) {
    std::printf("%4zu    %02x     %02x   %.4f   %zu\n", j, result.bytes[j].best_guess,
                true_k10[j], result.bytes[j].best_correlation,
                result.bytes[j].rank_of(true_k10[j]));
  }

  const std::size_t correct = result.correct_bytes(true_k10);
  std::printf("\nround-10 key bytes recovered: %zu/16\n", correct);
  if (correct == 16) {
    std::printf("master key (schedule inverted): ");
    for (std::uint8_t b : result.master_key) std::printf("%02x", b);
    std::printf("\nmatches the device key: %s\n",
                result.master_key == config.key ? "YES — full key recovery" : "no");
  }
  std::printf("\nmoral: the sensor that guards the chip can betray it; keep its output\n"
              "inside the trust boundary (paper Sec. II's trusted-analysis assumption).\n");
  return correct >= 14 ? 0 : 1;
}
