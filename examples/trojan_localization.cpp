// Trojan localization — beyond detecting *that* a Trojan runs, the EM
// side-channel can say *where*. The paper lists "location awareness" among
// EM's advantages over other side channels (Sec. III-A); this example
// exploits it: a virtual micro-coil scans the die, the anomaly map
// (suspect minus golden) is matched against each module's supply-loop field
// pattern, and the best match names the offending placement region.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/scan.hpp"

using namespace emts;

namespace {

void print_map(const sim::ScanMap& golden, const sim::ScanMap& suspect) {
  // ASCII heat map of |suspect - golden| (top row = top of die).
  double peak = 1e-300;
  for (std::size_t i = 0; i < golden.rms.size(); ++i) {
    peak = std::max(peak, std::abs(suspect.rms[i] - golden.rms[i]));
  }
  const char shades[] = " .:-=+*#%@";
  for (std::size_t row = 0; row < golden.ny; ++row) {
    const std::size_t iy = golden.ny - 1 - row;
    std::string line;
    for (std::size_t ix = 0; ix < golden.nx; ++ix) {
      const double d = std::abs(suspect.at(ix, iy) - golden.at(ix, iy)) / peak;
      line += shades[std::min<std::size_t>(static_cast<std::size_t>(d * 9.99), 9)];
    }
    std::printf("  |%s|\n", line.c_str());
  }
}

}  // namespace

int main() {
  sim::Chip chip{sim::make_default_config()};
  sim::ScanSpec spec;
  spec.nx = 28;
  spec.ny = 28;

  std::printf("near-field scan of the golden chip...\n");
  const auto golden = sim::near_field_scan(chip, spec, true, 0);

  bool all_correct = true;
  for (trojan::TrojanKind kind :
       {trojan::TrojanKind::kT2Leakage, trojan::TrojanKind::kT4PowerHog}) {
    chip.arm(kind);
    const auto suspect = sim::near_field_scan(chip, spec, true, 0);
    chip.disarm_all();

    const auto result = sim::localize_anomaly(golden, suspect, chip.floorplan(),
                                              chip.config().die);
    std::printf("\n%s activated — anomaly map (die, top view):\n", trojan::kind_label(kind));
    print_map(golden, suspect);
    std::printf("  matched module : %s (score %.3g, runner-up %.3g)\n",
                result.module_name.c_str(), result.match_score, result.runner_up_score);
    std::printf("  raw peak       : (%.0f um, %.0f um), contrast %.1f\n",
                1e6 * result.peak_x, 1e6 * result.peak_y, result.contrast);

    const std::string expected = kind == trojan::TrojanKind::kT2Leakage
                                     ? layout::module_names::kTrojan2
                                     : layout::module_names::kTrojan4;
    const bool correct = result.module_name == expected;
    std::printf("  verdict        : %s\n", correct ? "correctly localized" : "MISLOCALIZED");
    all_correct &= correct;
  }

  return all_correct ? 0 : 1;
}
