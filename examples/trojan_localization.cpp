// Trojan localization — beyond detecting *that* a Trojan runs, the EM
// side-channel can say *where*. The paper lists "location awareness" among
// EM's advantages over other side channels (Sec. III-A); this example
// exploits it with the sensor-array subsystem: an on-die grid of micro-coils
// records every window, each coil's anomaly energy above its golden baseline
// forms a spatial pattern, and array::Localizer matches that pattern against
// the sensitivity matrix to name the offending floorplan region.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "array/calibration.hpp"
#include "array/capture.hpp"
#include "array/grid.hpp"
#include "array/localizer.hpp"
#include "array/monitor.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

namespace {

void print_map(const array::SensorGrid& grid, const std::vector<double>& anomaly) {
  // ASCII heat map of the per-coil anomaly energy (top row = top of die).
  double peak = 1e-300;
  for (const double a : anomaly) peak = std::max(peak, a);
  const char shades[] = " .:-=+*#%@";
  for (std::size_t row = 0; row < grid.ny(); ++row) {
    const std::size_t iy = grid.ny() - 1 - row;
    std::string line;
    for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
      const double d = anomaly[iy * grid.nx() + ix] / peak;
      line += shades[std::min<std::size_t>(static_cast<std::size_t>(d * 9.99), 9)];
    }
    std::printf("  |%s|\n", line.c_str());
  }
}

}  // namespace

int main() {
  sim::Chip chip{sim::make_default_config()};
  array::GridSpec spec;
  spec.nx = 5;
  spec.ny = 5;
  const array::SensorGrid grid{chip.floorplan(), spec};
  const array::ArrayCapture capture{grid};
  const auto& engine = sim::CaptureEngine::shared();

  std::printf("calibrating the %zux%zu sensor grid on the golden chip...\n", grid.nx(),
              grid.ny());
  const array::ArrayCalibration calibration = array::calibrate_array(capture, engine, chip);
  const array::Localizer localizer{grid};

  bool all_correct = true;
  for (trojan::TrojanKind kind : trojan::kAllTrojanKinds) {
    chip.arm(kind);
    const array::BundleSet bundles = capture.capture_batch(engine, chip, 48, 10000);
    chip.disarm_all();

    array::ArrayMonitor monitor{grid, calibration};
    monitor.push_bundles(bundles);
    const array::LocalizationReport report = localizer.localize(monitor.anomaly_energy());

    std::printf("\n%s activated — anomaly map (die, top view):\n", trojan::kind_label(kind));
    print_map(grid, report.anomaly);

    const std::string expected = sim::trojan_host_module(kind);
    const bool alarmed = monitor.any_alarm();
    const bool correct = report.localized && report.module_name == expected;
    std::printf("  matched module : %s (score %.3f)\n", report.module_name.c_str(),
                report.score);
    std::printf("  grid cell      : (%zu, %zu) at (%.0f um, %.0f um)\n", report.cell.ix,
                report.cell.iy, 1e6 * report.cell.x, 1e6 * report.cell.y);
    std::printf("  verdict        : %s, %s\n", alarmed ? "alarmed" : "NO ALARM",
                correct ? "correctly localized" : "MISLOCALIZED");
    all_correct &= alarmed && correct;
  }

  return all_correct ? 0 : 1;
}
