#include "stats/separation.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::stats {
namespace {

std::vector<double> normal_sample(std::uint64_t seed, double mean, double sd, std::size_t n) {
  emts::Rng rng{seed};
  std::vector<double> out(n);
  for (double& v : out) v = rng.gaussian(mean, sd);
  return out;
}

TEST(Overlap, IdenticalDistributionsNearOne) {
  const auto a = normal_sample(1, 0.0, 1.0, 20000);
  const auto b = normal_sample(2, 0.0, 1.0, 20000);
  EXPECT_GT(overlap_coefficient(a, b), 0.9);
}

TEST(Overlap, DisjointDistributionsNearZero) {
  const auto a = normal_sample(3, 0.0, 0.5, 20000);
  const auto b = normal_sample(4, 100.0, 0.5, 20000);
  EXPECT_LT(overlap_coefficient(a, b), 0.05);
}

TEST(Overlap, PartialShiftIsIntermediate) {
  const auto a = normal_sample(5, 0.0, 1.0, 20000);
  const auto b = normal_sample(6, 1.0, 1.0, 20000);
  const double ov = overlap_coefficient(a, b);
  EXPECT_GT(ov, 0.3);
  EXPECT_LT(ov, 0.85);
}

TEST(Overlap, IsSymmetric) {
  const auto a = normal_sample(7, 0.0, 1.0, 5000);
  const auto b = normal_sample(8, 0.7, 1.3, 5000);
  EXPECT_NEAR(overlap_coefficient(a, b), overlap_coefficient(b, a), 1e-12);
}

TEST(Overlap, RejectsEmptyInput) {
  EXPECT_THROW(overlap_coefficient({}, {1.0}), emts::precondition_error);
}

TEST(WelchT, ZeroForSameDistribution) {
  const auto a = normal_sample(9, 5.0, 2.0, 50000);
  const auto b = normal_sample(10, 5.0, 2.0, 50000);
  EXPECT_NEAR(welch_t_statistic(a, b), 0.0, 3.0);  // |t| < 3 w.h.p.
}

TEST(WelchT, LargeForShiftedMeans) {
  const auto a = normal_sample(11, 0.0, 1.0, 5000);
  const auto b = normal_sample(12, 0.5, 1.0, 5000);
  EXPECT_LT(welch_t_statistic(a, b), -10.0);
}

TEST(WelchT, SignFollowsOrdering) {
  const auto lo = normal_sample(13, 0.0, 1.0, 5000);
  const auto hi = normal_sample(14, 2.0, 1.0, 5000);
  EXPECT_GT(welch_t_statistic(hi, lo), 0.0);
  EXPECT_LT(welch_t_statistic(lo, hi), 0.0);
}

TEST(ModeSeparation, ZeroishForIdenticalDistributions) {
  const auto a = normal_sample(15, 0.0, 1.0, 40000);
  const auto b = normal_sample(16, 0.0, 1.0, 40000);
  // Mode estimates jitter by a bin or two on finite samples; "zeroish" means
  // well under the ~2-sigma shifts the detector must flag.
  EXPECT_LT(mode_separation(a, b), 0.5);
}

TEST(ModeSeparation, DetectsPeakShift) {
  const auto a = normal_sample(17, 0.0, 1.0, 40000);
  const auto b = normal_sample(18, 2.0, 1.0, 40000);
  EXPECT_GT(mode_separation(a, b), 1.0);
}

TEST(CohensD, MatchesAnalyticValue) {
  const auto a = normal_sample(19, 0.0, 1.0, 100000);
  const auto b = normal_sample(20, 1.0, 1.0, 100000);
  EXPECT_NEAR(cohens_d(b, a), 1.0, 0.05);
}

TEST(CohensD, RejectsConstantSamples) {
  EXPECT_THROW(cohens_d({1, 1, 1}, {1, 1, 1}), emts::precondition_error);
}

}  // namespace
}  // namespace emts::stats
