#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace emts {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42, 7};
  Rng b{42, 7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 4);
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a{42, 1};
  Rng b{42, 2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{123};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformRangeRejectsInvertedBounds) {
  Rng rng{5};
  EXPECT_THROW(rng.uniform(1.0, 0.0), precondition_error);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng{99};
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t v = rng.uniform_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBelowRejectsZero) {
  Rng rng{1};
  EXPECT_THROW(rng.uniform_below(0), precondition_error);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng{2026};
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, GaussianScalesMeanAndStddev) {
  Rng rng{7};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, GaussianRejectsNegativeStddev) {
  Rng rng{1};
  EXPECT_THROW(rng.gaussian(0.0, -1.0), precondition_error);
}

TEST(Rng, CoinIsRoughlyFair) {
  Rng rng{11};
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.coin();
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.01);
}

TEST(Rng, CoinBiasFollowsProbability) {
  Rng rng{13};
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.coin(0.9);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.9, 0.01);
}

TEST(Rng, GaussianVectorHasRequestedSizeAndScale) {
  Rng rng{17};
  const auto v = rng.gaussian_vector(50000, 3.0);
  ASSERT_EQ(v.size(), 50000u);
  double sumsq = 0.0;
  for (double x : v) sumsq += x * x;
  EXPECT_NEAR(std::sqrt(sumsq / static_cast<double>(v.size())), 3.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{2024};
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u32() == child2.next_u32());
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a{2024};
  Rng b{2024};
  Rng ca = a.fork(9);
  Rng cb = b.fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u32(), cb.next_u32());
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Adjacent inputs should differ in many bits.
  const std::uint64_t d = mix64(100) ^ mix64(101);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (d >> i) & 1u;
  EXPECT_GT(bits, 10);
}

class RngUniformBelowRange : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RngUniformBelowRange, StaysBelowBoundAndHitsEveryValueForSmallN) {
  const std::uint32_t n = GetParam();
  Rng rng{mix64(n)};
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_below(n);
    ASSERT_LT(v, n);
    seen.insert(v);
  }
  if (n <= 16) {
    EXPECT_EQ(seen.size(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformBelowRange,
                         ::testing::Values(1u, 2u, 3u, 10u, 16u, 1000u, 1u << 31));

}  // namespace
}  // namespace emts
