#include "fleet/manifest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/assert.hpp"

namespace emts::fleet {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void write(const std::string& text) {
    std::ofstream out(path_);
    out << text;
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_ =
      (std::filesystem::temp_directory_path() / "emts_manifest_test.manifest").string();
};

TEST_F(ManifestTest, ParsesDevicesCommentsAndBlankLines) {
  write("# fleet of two\n"
        "\n"
        "dev-a a.emta\n"
        "dev-b b.emta model_b.emca\n");
  const auto entries = parse_manifest(path_);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].device_id, "dev-a");
  EXPECT_EQ(entries[0].archive_path, "a.emta");
  EXPECT_TRUE(entries[0].model_path.empty());
  EXPECT_EQ(entries[0].line_no, 3u);
  EXPECT_EQ(entries[1].device_id, "dev-b");
  EXPECT_EQ(entries[1].model_path, "model_b.emca");
  EXPECT_EQ(entries[1].line_no, 4u);
}

TEST_F(ManifestTest, RejectsDuplicateDeviceIdNamingBothLines) {
  // Before the duplicate check, the second `dev-a` silently won inside
  // FleetMonitor::add_device's map — the first registration shadowed with no
  // diagnostic. The parser now refuses at parse time.
  write("dev-a a.emta\n"
        "dev-b b.emta\n"
        "dev-a other.emta\n");
  try {
    parse_manifest(path_);
    FAIL() << "duplicate device_id accepted";
  } catch (const precondition_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(":3"), std::string::npos) << message;
    EXPECT_NE(message.find("dev-a"), std::string::npos) << message;
    EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  }
}

TEST_F(ManifestTest, RejectsMissingArchiveColumn) {
  write("dev-a\n");
  EXPECT_THROW(parse_manifest(path_), precondition_error);
}

TEST_F(ManifestTest, RejectsTrailingFields) {
  write("dev-a a.emta model.emca surplus\n");
  EXPECT_THROW(parse_manifest(path_), precondition_error);
}

TEST_F(ManifestTest, RejectsEmptyManifest) {
  write("# only comments\n\n");
  EXPECT_THROW(parse_manifest(path_), precondition_error);
}

TEST_F(ManifestTest, RejectsUnreadableFile) {
  EXPECT_THROW(parse_manifest(path_ + ".does-not-exist"), precondition_error);
}

}  // namespace
}  // namespace emts::fleet
