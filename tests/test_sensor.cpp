#include "sensor/measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::sensor {
namespace {

ChainSpec ideal_chain() {
  ChainSpec chain;
  chain.gain = 1.0;
  chain.bandwidth_hz = 1e12;  // effectively flat
  chain.adc_bits = 0;         // no quantization
  return chain;
}

NoiseSpec no_noise() {
  NoiseSpec noise;
  noise.thermal_rms_v = 0.0;
  noise.environment_rms_v = 0.0;
  return noise;
}

TEST(MeasurementChain, IdealChainIsTransparent) {
  const MeasurementChain chain{ideal_chain(), no_noise()};
  emts::Rng rng{1};
  const std::vector<double> emf{0.1, -0.2, 0.3, 0.0};
  const auto out = chain.measure(emf, 1e6, rng);
  ASSERT_EQ(out.size(), emf.size());
  for (std::size_t i = 0; i < emf.size(); ++i) EXPECT_NEAR(out[i], emf[i], 1e-9);
}

TEST(MeasurementChain, GainScalesSignal) {
  ChainSpec chain = ideal_chain();
  chain.gain = 10.0;
  const MeasurementChain mc{chain, no_noise()};
  emts::Rng rng{2};
  const auto out = mc.measure({0.05, -0.05}, 1e6, rng);
  EXPECT_NEAR(out[0], 0.5, 1e-6);
  EXPECT_NEAR(out[1], -0.5, 1e-6);
}

TEST(MeasurementChain, NoiseHasConfiguredRms) {
  ChainSpec chain = ideal_chain();
  NoiseSpec noise = no_noise();
  noise.environment_rms_v = 1e-3;
  noise.environment_pickup = 0.5;
  const MeasurementChain mc{chain, noise};
  emts::Rng rng{3};
  const auto out = mc.measure(std::vector<double>(100000, 0.0), 1e9, rng);
  EXPECT_NEAR(stats::rms(out), 0.5e-3, 0.02e-3);
}

TEST(MeasurementChain, PickupFactorScalesAmbient) {
  ChainSpec chain = ideal_chain();
  NoiseSpec shielded = no_noise();
  shielded.environment_rms_v = 1e-3;
  shielded.environment_pickup = 0.1;
  NoiseSpec open = shielded;
  open.environment_pickup = 1.0;
  emts::Rng rng_a{4};
  emts::Rng rng_b{4};
  const auto quiet = MeasurementChain{chain, shielded}.measure(
      std::vector<double>(50000, 0.0), 1e9, rng_a);
  const auto loud = MeasurementChain{chain, open}.measure(
      std::vector<double>(50000, 0.0), 1e9, rng_b);
  EXPECT_NEAR(stats::rms(loud) / stats::rms(quiet), 10.0, 0.5);
}

TEST(MeasurementChain, InterferenceToneAppearsAtItsFrequency) {
  ChainSpec chain = ideal_chain();
  NoiseSpec noise = no_noise();
  noise.tones = {{1e6, 0.01}};
  const MeasurementChain mc{chain, noise};
  emts::Rng rng{5};
  const auto out = mc.measure(std::vector<double>(8192, 0.0), 16e6, rng);
  // RMS of a 10 mV sine is ~7.07 mV.
  EXPECT_NEAR(stats::rms(out), 0.01 / std::sqrt(2.0), 5e-4);
}

TEST(MeasurementChain, TonePhaseVariesBetweenCaptures) {
  ChainSpec chain = ideal_chain();
  NoiseSpec noise = no_noise();
  noise.tones = {{1e6, 0.01}};
  const MeasurementChain mc{chain, noise};
  emts::Rng rng{6};
  const auto a = mc.measure(std::vector<double>(1024, 0.0), 16e6, rng);
  const auto b = mc.measure(std::vector<double>(1024, 0.0), 16e6, rng);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.1);
}

TEST(MeasurementChain, DriftWandersSlowly) {
  ChainSpec chain = ideal_chain();
  NoiseSpec noise = no_noise();
  noise.drift_rms_v = 1e-3;
  const MeasurementChain mc{chain, noise};
  emts::Rng rng{7};
  const auto out = mc.measure(std::vector<double>(65536, 0.0), 1e9, rng);
  // Random walk: the second half should sit at a visibly different level
  // than machine epsilon, and adjacent samples should be highly correlated.
  EXPECT_GT(stats::rms(out), 1e-5);
  std::vector<double> head(out.begin(), out.begin() + 32768);
  std::vector<double> shifted(out.begin() + 1, out.begin() + 32769);
  EXPECT_GT(stats::pearson_correlation(head, shifted), 0.99);
}

TEST(MeasurementChain, AdcQuantizesToLsbGrid) {
  ChainSpec chain = ideal_chain();
  chain.adc_bits = 8;
  chain.adc_full_scale_v = 1.0;
  const MeasurementChain mc{chain, no_noise()};
  emts::Rng rng{8};
  const auto out = mc.measure({0.123456, -0.98765, 0.5}, 1e6, rng);
  const double lsb = 2.0 / 256.0;
  for (double v : out) {
    EXPECT_NEAR(std::remainder(v, lsb), 0.0, 1e-12);
  }
}

TEST(MeasurementChain, AdcClipsAtFullScale) {
  ChainSpec chain = ideal_chain();
  chain.adc_bits = 8;
  chain.adc_full_scale_v = 0.5;
  const MeasurementChain mc{chain, no_noise()};
  emts::Rng rng{9};
  const auto out = mc.measure({3.0, -3.0}, 1e6, rng);
  EXPECT_LE(out[0], 0.5 + 1e-12);
  EXPECT_GE(out[1], -0.5 - 1e-12);
}

TEST(MeasurementChain, BandwidthLimitsFastSignals) {
  ChainSpec chain = ideal_chain();
  chain.bandwidth_hz = 1e6;
  const MeasurementChain mc{chain, no_noise()};
  emts::Rng rng{10};
  // 50 MHz tone through a 1 MHz chain: heavily attenuated.
  std::vector<double> emf(8192);
  for (std::size_t i = 0; i < emf.size(); ++i) {
    emf[i] = std::sin(2.0 * 3.14159265358979 * 50e6 * static_cast<double>(i) / 1e9);
  }
  const auto out = mc.measure(emf, 1e9, rng);
  EXPECT_LT(stats::rms(std::vector<double>(out.begin() + 4096, out.end())), 0.1);
}

TEST(MeasurementChain, GainJitterVariesBetweenCaptures) {
  ChainSpec chain = ideal_chain();
  NoiseSpec noise = no_noise();
  noise.gain_jitter_rel = 0.05;
  const MeasurementChain mc{chain, noise};
  emts::Rng rng{11};
  const std::vector<double> emf(256, 0.1);
  const auto a = mc.measure(emf, 1e6, rng);
  const auto b = mc.measure(emf, 1e6, rng);
  EXPECT_NE(a[200], b[200]);
  EXPECT_NEAR(a[200], 0.1, 0.03);
}

TEST(MeasurementChain, RejectsInvalidSpecs) {
  EXPECT_THROW(MeasurementChain(ChainSpec{0.0, 1e6, 1.0, 8}, no_noise()),
               emts::precondition_error);
  EXPECT_THROW(MeasurementChain(ChainSpec{1.0, 0.0, 1.0, 8}, no_noise()),
               emts::precondition_error);
  EXPECT_THROW(MeasurementChain(ChainSpec{1.0, 1e6, 1.0, 99}, no_noise()),
               emts::precondition_error);
  NoiseSpec bad = no_noise();
  bad.thermal_rms_v = -1.0;
  EXPECT_THROW(MeasurementChain(ideal_chain(), bad), emts::precondition_error);
}

TEST(MeasurementChain, RejectsEmptyInput) {
  const MeasurementChain mc{ideal_chain(), no_noise()};
  emts::Rng rng{12};
  EXPECT_THROW(mc.measure({}, 1e6, rng), emts::precondition_error);
  EXPECT_THROW(mc.measure({1.0}, 0.0, rng), emts::precondition_error);
}

}  // namespace
}  // namespace emts::sensor
