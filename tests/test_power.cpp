#include "power/current_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"

namespace emts::power {
namespace {

TEST(ClockSpec, DefaultsMatchDesignDoc) {
  const ClockSpec clock{};
  EXPECT_DOUBLE_EQ(clock.frequency, 48e6);
  EXPECT_EQ(clock.samples_per_cycle, 8u);
  EXPECT_DOUBLE_EQ(clock.sample_rate(), 384e6);
  // T1's divide-by-64 carrier must land exactly on 750 kHz.
  EXPECT_DOUBLE_EQ(clock.frequency / 64.0, 750e3);
}

TEST(ClockSpec, ValidateRejectsBadSpecs) {
  ClockSpec bad{};
  bad.frequency = 0.0;
  EXPECT_THROW(bad.validate(), emts::precondition_error);
  ClockSpec few{};
  few.samples_per_cycle = 1;
  EXPECT_THROW(few.validate(), emts::precondition_error);
}

TEST(ClockSpec, CycleStartSample) {
  const ClockSpec clock{};
  EXPECT_EQ(clock.cycle_start_sample(0), 0u);
  EXPECT_EQ(clock.cycle_start_sample(10), 80u);
}

TEST(CurrentTrace, StartsAtZero) {
  const CurrentTrace trace{ClockSpec{}, 16};
  EXPECT_EQ(trace.samples().size(), 128u);
  for (double v : trace.samples()) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(trace.total_charge(), 0.0);
}

TEST(CurrentTrace, PulseConservesCharge) {
  CurrentTrace trace{ClockSpec{}, 16};
  // 100 toggles x 10 fC = 1 pC.
  trace.add_pulse({3, 100.0, 500.0, 2000.0}, 10.0);
  EXPECT_NEAR(trace.total_charge(), 1e-12, 1e-18);
}

TEST(CurrentTrace, PulseLandsInItsCycle) {
  CurrentTrace trace{ClockSpec{}, 16};
  trace.add_pulse({5, 10.0, 100.0, 1000.0}, 10.0);
  const auto& s = trace.samples();
  // Cycle 5 spans samples 40..47.
  for (std::size_t i = 0; i < 40; ++i) EXPECT_DOUBLE_EQ(s[i], 0.0) << i;
  double in_cycle = 0.0;
  for (std::size_t i = 40; i < 48; ++i) in_cycle += std::abs(s[i]);
  EXPECT_GT(in_cycle, 0.0);
  for (std::size_t i = 48; i < s.size(); ++i) EXPECT_DOUBLE_EQ(s[i], 0.0) << i;
}

TEST(CurrentTrace, LateOnsetSpillsIntoChosenSamples) {
  CurrentTrace trace{ClockSpec{}, 4};
  // Onset one sample in, spread one sample: sample 1 carries (essentially)
  // all the charge; boundary rounding may leave slivers in the neighbours.
  const double dt_ps = 1e12 / ClockSpec{}.sample_rate();
  trace.add_pulse({0, 1.0, dt_ps, dt_ps}, 10.0);
  const auto& s = trace.samples();
  const double dt_s = 1.0 / trace.sample_rate();
  const double total = trace.total_charge();
  EXPECT_GT(s[1] * dt_s, 0.9 * total);
  EXPECT_LT(s[0] * dt_s, 0.1 * total);
  EXPECT_LT(s[3], 1e-12);
}

TEST(CurrentTrace, OutOfWindowPulseClipped) {
  CurrentTrace trace{ClockSpec{}, 4};
  trace.add_pulse({3, 10.0, 2000.0, 100000.0}, 10.0);  // spills past the end
  const double captured = trace.total_charge();
  const double full = 10.0 * 10.0e-15;
  EXPECT_GT(captured, 0.0);
  EXPECT_LT(captured, full);  // the spilled tail is dropped
}

TEST(CurrentTrace, ZeroTogglesIsNoOp) {
  CurrentTrace trace{ClockSpec{}, 4};
  trace.add_pulse({0, 0.0, 0.0, 100.0}, 10.0);
  EXPECT_DOUBLE_EQ(trace.total_charge(), 0.0);
}

TEST(CurrentTrace, RejectsZeroSpread) {
  CurrentTrace trace{ClockSpec{}, 4};
  EXPECT_THROW(trace.add_pulse({0, 1.0, 0.0, 0.0}, 10.0), emts::precondition_error);
}

TEST(CurrentTrace, NegativeChargeModelsDischarge) {
  CurrentTrace trace{ClockSpec{}, 4};
  trace.add_pulse({0, 1.0, 100.0, 1000.0}, 10.0);
  trace.add_pulse({2, 1.0, 100.0, 1000.0}, -10.0);
  EXPECT_NEAR(trace.total_charge(), 0.0, 1e-20);
  double min_v = 0.0;
  for (double v : trace.samples()) min_v = std::min(min_v, v);
  EXPECT_LT(min_v, 0.0);
}

TEST(CurrentTrace, DcAddsUniformly) {
  CurrentTrace trace{ClockSpec{}, 8};
  trace.add_dc(1e-3);
  for (double v : trace.samples()) EXPECT_DOUBLE_EQ(v, 1e-3);
  const double window_s = 8.0 / 48e6;
  EXPECT_NEAR(trace.total_charge(), 1e-3 * window_s, 1e-15);
}

TEST(CurrentTrace, AddSamplesAccumulates) {
  CurrentTrace trace{ClockSpec{}, 1};
  std::vector<double> extra(8, 0.5);
  trace.add_samples(extra);
  trace.add_samples(extra);
  for (double v : trace.samples()) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_THROW(trace.add_samples(std::vector<double>(5, 0.0)), emts::precondition_error);
}

TEST(CurrentTrace, DerivativeOfStepIsSpike) {
  CurrentTrace trace{ClockSpec{}, 2};
  std::vector<double> step(16, 0.0);
  for (std::size_t i = 8; i < 16; ++i) step[i] = 1e-3;
  trace.add_samples(step);
  const auto d = trace.derivative();
  ASSERT_EQ(d.size(), 16u);
  EXPECT_NEAR(d[8], 1e-3 * trace.sample_rate(), 1e-3);
  EXPECT_NEAR(d[9], 0.0, 1e-9);
}

TEST(CurrentTrace, PulsesSuperpose) {
  CurrentTrace a{ClockSpec{}, 8};
  a.add_pulse({1, 50.0, 200.0, 1500.0}, 10.0);
  a.add_pulse({1, 30.0, 800.0, 900.0}, 10.0);

  CurrentTrace b1{ClockSpec{}, 8};
  b1.add_pulse({1, 50.0, 200.0, 1500.0}, 10.0);
  CurrentTrace b2{ClockSpec{}, 8};
  b2.add_pulse({1, 30.0, 800.0, 900.0}, 10.0);

  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_NEAR(a.samples()[i], b1.samples()[i] + b2.samples()[i], 1e-18);
  }
}

class ChargeConservation : public ::testing::TestWithParam<double> {};

// Property: deposited charge equals integrated current for any spread.
TEST_P(ChargeConservation, HoldsForAllSpreads) {
  CurrentTrace trace{ClockSpec{}, 32};
  trace.add_pulse({10, 123.0, 350.0, GetParam()}, 7.5);
  EXPECT_NEAR(trace.total_charge(), 123.0 * 7.5e-15, 1e-20 + 1e-9 * 123.0 * 7.5e-15);
}

INSTANTIATE_TEST_SUITE_P(Spreads, ChargeConservation,
                         ::testing::Values(50.0, 500.0, 2604.0, 8000.0, 20000.0));

}  // namespace
}  // namespace emts::power
