#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/csv.hpp"
#include "io/table.hpp"
#include "util/assert.hpp"

namespace emts::io {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAreAligned) {
  Table t{{"a", "b"}};
  t.add_row({"looooooong", "x"});
  t.add_row({"s", "y"});
  const std::string out = t.render();
  // 'x' and 'y' must start at the same column.
  const auto line_of = [&](const std::string& needle) {
    const auto pos = out.find(needle);
    const auto line_start = out.rfind('\n', pos) + 1;
    return pos - line_start;
  };
  EXPECT_EQ(line_of("x"), line_of("y"));
}

TEST(Table, RejectsMismatchedRow) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), emts::precondition_error);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::num(29.976, 5), "29.976");
}

class CsvRoundTrip : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_ = (std::filesystem::temp_directory_path() / "emts_test.csv").string();
};

TEST_F(CsvRoundTrip, WriteThenReadRecoversData) {
  const std::vector<std::string> names{"t", "v"};
  const std::vector<std::vector<double>> cols{{0.0, 1.0, 2.0}, {0.5, -1.25, 3.75}};
  write_csv(path_, names, cols);

  std::vector<std::string> read_names;
  const auto read_cols = read_csv(path_, &read_names);
  EXPECT_EQ(read_names, names);
  ASSERT_EQ(read_cols.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    ASSERT_EQ(read_cols[c].size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(read_cols[c][r], cols[c][r]);
  }
}

TEST_F(CsvRoundTrip, PreservesPrecision) {
  write_csv(path_, {"x"}, {{1.23456789012e-7}});
  const auto cols = read_csv(path_);
  EXPECT_NEAR(cols[0][0], 1.23456789012e-7, 1e-18);
}

TEST_F(CsvRoundTrip, RejectsRaggedColumns) {
  EXPECT_THROW(write_csv(path_, {"a", "b"}, {{1.0}, {1.0, 2.0}}), emts::precondition_error);
  EXPECT_THROW(write_csv(path_, {"a"}, {{1.0}, {2.0}}), emts::precondition_error);
}

TEST(Csv, ReadRejectsMissingFile) {
  EXPECT_THROW(read_csv("/nonexistent/path/file.csv"), emts::precondition_error);
}

}  // namespace
}  // namespace emts::io
