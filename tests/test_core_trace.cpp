#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/preprocess.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::core {
namespace {

TEST(TraceSet, AddEnforcesEqualLengths) {
  TraceSet set;
  set.add(Trace{1, 2, 3});
  EXPECT_THROW(set.add(Trace{1, 2}), emts::precondition_error);
  EXPECT_THROW(set.add(Trace{}), emts::precondition_error);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.trace_length(), 3u);
}

TEST(TraceSet, ValidateChecksSampleRate) {
  TraceSet set;
  set.add(Trace{1, 2});
  EXPECT_THROW(set.validate(), emts::precondition_error);
  set.sample_rate = 1e6;
  EXPECT_NO_THROW(set.validate());
}

TEST(TraceSet, MeanTraceAverages) {
  TraceSet set;
  set.add(Trace{1, 3});
  set.add(Trace{3, 5});
  const Trace mean = set.mean_trace();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
}

TEST(TraceSet, MeanOfEmptySetRejected) {
  TraceSet set;
  EXPECT_THROW(set.mean_trace(), emts::precondition_error);
}

TEST(Preprocessor, RemoveMeanCentersTrace) {
  Preprocessor::Options opt{};
  opt.decimation = 1;
  opt.normalize_rms = false;
  const Preprocessor pre{opt};
  const auto f = pre.features(Trace{1, 2, 3, 4});
  double sum = 0.0;
  for (double v : f) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Preprocessor, NormalizeRmsGivesUnitRms) {
  Preprocessor::Options opt{};
  opt.decimation = 1;
  opt.normalize_rms = true;
  const Preprocessor pre{opt};
  emts::Rng rng{1};
  Trace t(1024);
  for (double& v : t) v = rng.gaussian(0.0, 7.0);
  const auto f = pre.features(t);
  double acc = 0.0;
  for (double v : f) acc += v * v;
  EXPECT_NEAR(std::sqrt(acc / static_cast<double>(f.size())), 1.0, 1e-9);
}

TEST(Preprocessor, ConstantTraceSurvivesNormalization) {
  Preprocessor::Options opt{};
  opt.decimation = 1;
  opt.normalize_rms = true;
  const Preprocessor pre{opt};
  // After mean removal a constant trace is all-zero; normalization must not
  // divide by zero.
  const auto f = pre.features(Trace(64, 5.0));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Preprocessor, DecimationReducesDimension) {
  Preprocessor::Options opt{};
  opt.decimation = 16;
  const Preprocessor pre{opt};
  const auto f = pre.features(Trace(4096, 1.0));
  EXPECT_EQ(f.size(), 256u);
  EXPECT_EQ(pre.feature_dim(4096), 256u);
}

TEST(Preprocessor, SmoothingReducesNoise) {
  Preprocessor::Options raw{};
  raw.decimation = 1;
  raw.remove_mean = false;
  raw.normalize_rms = false;
  Preprocessor::Options smooth = raw;
  smooth.smooth_window = 9;
  emts::Rng rng{2};
  Trace t(2048);
  for (double& v : t) v = rng.gaussian();
  const auto fr = Preprocessor{raw}.features(t);
  const auto fs = Preprocessor{smooth}.features(t);
  double er = 0.0;
  double es = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    er += fr[i] * fr[i];
    es += fs[i] * fs[i];
  }
  EXPECT_LT(es, er / 4.0);
}

TEST(Preprocessor, FeatureMatrixRowsMatchTraces) {
  TraceSet set;
  set.add(Trace(64, 1.0));
  set.add(Trace(64, 2.0));
  set.add(Trace(64, 3.0));
  Preprocessor::Options opt{};
  opt.decimation = 8;
  const auto m = Preprocessor{opt}.feature_matrix(set);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 8u);
}

TEST(Preprocessor, RejectsBadOptions) {
  Preprocessor::Options even{};
  even.smooth_window = 4;
  EXPECT_THROW(Preprocessor{even}, emts::precondition_error);
  Preprocessor::Options zero{};
  zero.decimation = 0;
  EXPECT_THROW(Preprocessor{zero}, emts::precondition_error);
}

TEST(Preprocessor, RejectsEmptyInputs) {
  const Preprocessor pre;
  EXPECT_THROW(pre.features({}), emts::precondition_error);
  EXPECT_THROW(pre.feature_matrix(TraceSet{}), emts::precondition_error);
}

}  // namespace
}  // namespace emts::core
