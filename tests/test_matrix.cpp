#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"

namespace emts::linalg {
namespace {

TEST(Matrix, ConstructedWithFill) {
  Matrix m{2, 3, 1.5};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, FromRowsRoundTrips) {
  const auto m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, FromRowsRejectsRaggedInput) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), emts::precondition_error);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const auto eye = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, TransposeSwapsIndices) {
  const auto m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t(c, r), m(r, c));
}

TEST(Matrix, ProductMatchesHandComputation) {
  const auto a = Matrix::from_rows({{1, 2}, {3, 4}});
  const auto b = Matrix::from_rows({{5, 6}, {7, 8}});
  const auto p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, ProductRejectsMismatchedShapes) {
  const Matrix a{2, 3};
  const Matrix b{2, 3};
  EXPECT_THROW(a * b, emts::precondition_error);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  const auto m = Matrix::from_rows({{1, -2, 0.5}, {3, 4, -1}, {0, 7, 2}});
  const auto eye = Matrix::identity(3);
  const auto left = eye * m;
  const auto right = m * eye;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(left(r, c), m(r, c));
      EXPECT_DOUBLE_EQ(right(r, c), m(r, c));
    }
}

TEST(Matrix, MatrixVectorProduct) {
  const auto m = Matrix::from_rows({{1, 0, 2}, {0, 3, -1}});
  const std::vector<double> v{2, 1, 4};
  const auto out = m * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 10.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(Matrix, AdditionAndSubtraction) {
  const auto a = Matrix::from_rows({{1, 2}, {3, 4}});
  const auto b = Matrix::from_rows({{10, 20}, {30, 40}});
  const auto sum = a + b;
  const auto diff = b - a;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
}

TEST(Matrix, ScalarScale) {
  auto m = Matrix::from_rows({{1, -2}});
  m *= 3.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), -6.0);
}

TEST(Matrix, FrobeniusNorm) {
  const auto m = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, SymmetryDetection) {
  const auto sym = Matrix::from_rows({{2, 1}, {1, 5}});
  const auto asym = Matrix::from_rows({{2, 1}, {0, 5}});
  EXPECT_TRUE(sym.is_symmetric());
  EXPECT_FALSE(asym.is_symmetric());
  EXPECT_FALSE((Matrix{2, 3}.is_symmetric()));
}

TEST(Matrix, MaxOffDiagonal) {
  const auto m = Matrix::from_rows({{9, -4}, {2, 9}});
  EXPECT_DOUBLE_EQ(m.max_off_diagonal(), 4.0);
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<double> a{1, 2, 2};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
}

TEST(VectorOps, EuclideanDistance) {
  const std::vector<double> a{0, 0};
  const std::vector<double> b{3, 4};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, a), 0.0);
}

TEST(VectorOps, EuclideanDistanceIsSymmetric) {
  const std::vector<double> a{1, -2, 0.5};
  const std::vector<double> b{-3, 4, 2};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), euclidean_distance(b, a));
}

TEST(VectorOps, SizeMismatchRejected) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1};
  EXPECT_THROW(dot(a, b), emts::precondition_error);
  EXPECT_THROW(euclidean_distance(a, b), emts::precondition_error);
  EXPECT_THROW(add(a, b), emts::precondition_error);
  EXPECT_THROW(subtract(a, b), emts::precondition_error);
}

TEST(VectorOps, AddSubtractScale) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{10, 20};
  const auto s = add(a, b);
  const auto d = subtract(b, a);
  const auto sc = scaled(a, -2.0);
  EXPECT_DOUBLE_EQ(s[1], 22.0);
  EXPECT_DOUBLE_EQ(d[0], 9.0);
  EXPECT_DOUBLE_EQ(sc[1], -4.0);
}

}  // namespace
}  // namespace emts::linalg
