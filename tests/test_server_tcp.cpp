// IngestServer over loopback TCP: the same EMWF framing as the unix
// transport, plus the two TCP-only gates — the accept-time CIDR allowlist
// and the shared-secret HELLO handshake. Clients here behave exactly like
// `emsentry_cli replay-client --connect`.
#include "fleet/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "io/wire.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::fleet {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

core::Trace golden_trace(emts::Rng& rng) {
  core::Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

core::TraceSet make_set(std::size_t n, std::uint64_t seed) {
  emts::Rng rng{seed};
  core::TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) set.add(golden_trace(rng));
  return set;
}

const core::TrustEvaluator& fitted() {
  static const core::TrustEvaluator evaluator =
      core::TrustEvaluator::calibrate(make_set(30, 1));
  return evaluator;
}

FleetOptions fleet_options() {
  FleetOptions options;
  options.shards = 2;
  core::RuntimeMonitor::Options monitor;
  monitor.alarm_debounce = 3;
  monitor.spectral_window = 8;
  options.monitor = monitor;
  return options;
}

/// Asks the kernel for a free loopback port, then releases it for the server
/// to bind (SO_REUSEADDR on the listener tolerates the handover).
std::uint16_t pick_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EMTS_REQUIRE(fd >= 0, "test socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EMTS_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
               "test bind() failed");
  socklen_t len = sizeof addr;
  EMTS_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
               "test getsockname() failed");
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

int connect_tcp(std::uint16_t port) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EMTS_REQUIRE(fd >= 0, "test socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EMTS_REQUIRE(false, "could not connect to loopback port " + std::to_string(port));
  return -1;
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    EMTS_REQUIRE(n > 0, "test write() failed");
    sent += static_cast<std::size_t>(n);
  }
}

/// Like send_all, but tolerates the peer closing mid-write — the *expected*
/// outcome on rejection paths — and suppresses SIGPIPE via MSG_NOSIGNAL.
void send_until_closed(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string encode_frames(const std::string& device_id, const core::TraceSet& batch) {
  std::string bytes;
  for (const core::Trace& trace : batch.traces) {
    io::wire::encode_trace_frame(device_id, batch.sample_rate, trace.data(), trace.size(),
                                 bytes);
  }
  return bytes;
}

/// Blocks (bounded) until the server closes the connection; a clean close is
/// the observable contract for every rejection path.
void expect_server_closes(int fd) {
  timeval timeout{};
  timeout.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "server did not close the connection";
}

class TcpServerTest : public ::testing::Test {
 protected:
  std::uint16_t port_ = pick_port();
  std::string listen_ = "127.0.0.1:" + std::to_string(port_);
};

TEST_F(TcpServerTest, FragmentedFramesAcrossSegmentsIngest) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.listen_address = listen_;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const core::TraceSet batch = make_set(4, 2);
  const std::string bytes = encode_frames("chip-00", batch);
  const int fd = connect_tcp(port_);
  // Deliberately awful segmentation: 7-byte writes, so every frame arrives
  // split across many TCP segments and the decoder must reassemble.
  for (std::size_t off = 0; off < bytes.size(); off += 7) {
    const std::size_t chunk = std::min<std::size_t>(7, bytes.size() - off);
    send_all(fd, bytes.data() + off, chunk);
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 4) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().connections_accepted, 1u);
  EXPECT_EQ(server.counters().frames_accepted, 4u);
  EXPECT_EQ(server.counters().bytes_received, bytes.size());
  EXPECT_EQ(fleet.stats().traces_processed, 4u);
}

TEST_F(TcpServerTest, BothTransportsServeSideBySide) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.listen_address = listen_;
  options.socket_path = "/tmp/emts_tcp_test_" + std::to_string(::getpid()) + ".sock";
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const std::string tcp_bytes = encode_frames("chip-00", make_set(3, 3));
  const int fd = connect_tcp(port_);
  send_all(fd, tcp_bytes.data(), tcp_bytes.size());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  stop = true;
  serve.join();
  std::filesystem::remove(options.socket_path);

  // The unix listener coexisted the whole time (bound in the constructor);
  // the TCP leg carried the traffic.
  EXPECT_EQ(server.counters().frames_accepted, 3u);
}

TEST_F(TcpServerTest, AllowlistRejectionIsCountedAndClosesImmediately) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.listen_address = listen_;
  options.allow = {"10.0.0.0/8", "192.168.7.44"};  // loopback not included
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const int fd = connect_tcp(port_);  // SYN handshake succeeds...
  expect_server_closes(fd);           // ...then the ACL closes it unread.
  ::close(fd);
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().connections_rejected_acl, 1u);
  EXPECT_EQ(server.counters().connections_accepted, 0u);
  EXPECT_EQ(server.counters().frames_accepted, 0u);
  EXPECT_EQ(fleet.stats().traces_processed, 0u);
}

TEST_F(TcpServerTest, AllowlistAdmitsMatchingPeer) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.listen_address = listen_;
  options.allow = {"127.0.0.0/8"};
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const std::string bytes = encode_frames("chip-00", make_set(2, 4));
  const int fd = connect_tcp(port_);
  send_all(fd, bytes.data(), bytes.size());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().connections_rejected_acl, 0u);
  EXPECT_EQ(server.counters().frames_accepted, 2u);
}

TEST_F(TcpServerTest, WrongHelloTokenClosesWithoutIngesting) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.listen_address = listen_;
  options.auth_secret = "sesame";
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  std::string bytes;
  io::wire::encode_hello_frame("open-says-who", bytes);
  bytes += encode_frames("chip-00", make_set(2, 5));
  const int fd = connect_tcp(port_);
  send_until_closed(fd, bytes.data(), bytes.size());
  expect_server_closes(fd);
  ::close(fd);
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().auth_failures, 1u);
  EXPECT_EQ(server.counters().connections_dropped, 1u);
  // Nothing behind the failed handshake reached the fleet.
  EXPECT_EQ(server.counters().frames_accepted, 0u);
  EXPECT_EQ(fleet.stats().traces_processed, 0u);
}

TEST_F(TcpServerTest, TraceBeforeHelloClosesWithoutIngesting) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.listen_address = listen_;
  options.auth_secret = "sesame";
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  // Valid framing, valid device — but no HELLO first.
  const std::string bytes = encode_frames("chip-00", make_set(1, 6));
  const int fd = connect_tcp(port_);
  send_until_closed(fd, bytes.data(), bytes.size());
  expect_server_closes(fd);
  ::close(fd);
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().auth_failures, 1u);
  EXPECT_EQ(server.counters().frames_accepted, 0u);
  EXPECT_EQ(fleet.stats().traces_processed, 0u);
}

TEST_F(TcpServerTest, CorrectHelloAuthenticatesAndIngests) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.listen_address = listen_;
  options.auth_secret = "sesame";
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  std::string bytes;
  io::wire::encode_hello_frame("sesame", bytes);
  bytes += encode_frames("chip-00", make_set(3, 7));
  const int fd = connect_tcp(port_);
  send_all(fd, bytes.data(), bytes.size());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().auth_failures, 0u);
  EXPECT_EQ(server.counters().frames_accepted, 3u);
  EXPECT_EQ(fleet.stats().traces_processed, 3u);
}

TEST(TcpServerOptions, RefusesUnusableListenEndpoint) {
  FleetMonitor fleet{fleet_options()};
  ServerOptions options;
  options.listen_address = "not-an-endpoint";
  EXPECT_THROW((IngestServer{fleet, options}), emts::precondition_error);
  // Port 1 on a non-root test runner: bind() itself must fail loudly.
  options.listen_address = "127.0.0.1:1";
  if (::geteuid() != 0) {
    EXPECT_THROW((IngestServer{fleet, options}), emts::precondition_error);
  }
}

}  // namespace
}  // namespace emts::fleet
