#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::stats {
namespace {

TEST(Descriptive, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({-5}), -5.0);
}

TEST(Descriptive, MeanRejectsEmpty) {
  EXPECT_THROW(mean({}), emts::precondition_error);
}

TEST(Descriptive, VarianceIsUnbiased) {
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} with n-1 denominator is 32/7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, VarianceRequiresTwoSamples) {
  EXPECT_THROW(variance({1.0}), emts::precondition_error);
}

TEST(Descriptive, StddevIsSqrtVariance) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(variance(v)));
}

TEST(Descriptive, RmsOfSine) {
  std::vector<double> v(10000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) / 100.0);
  }
  EXPECT_NEAR(rms(v), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(Descriptive, RmsOfConstant) {
  EXPECT_DOUBLE_EQ(rms({-3, -3, -3}), 3.0);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> v{3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 5.0);
}

TEST(Descriptive, QuantileEndpointsAndMedian) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Descriptive, QuantileRejectsBadP) {
  EXPECT_THROW(quantile({1.0, 2.0}, -0.1), emts::precondition_error);
  EXPECT_THROW(quantile({1.0, 2.0}, 1.1), emts::precondition_error);
}

TEST(Descriptive, MedianUnsortedInput) {
  EXPECT_DOUBLE_EQ(median({9, 1, 5}), 5.0);
}

TEST(Descriptive, PerfectPositiveAndNegativeCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  std::vector<double> neg_y{-2, -4, -6, -8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, neg_y), -1.0, 1e-12);
}

TEST(Descriptive, UncorrelatedNoiseNearZero) {
  emts::Rng rng{3};
  std::vector<double> a(20000);
  std::vector<double> b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.gaussian();
    b[i] = rng.gaussian();
  }
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.03);
}

TEST(Descriptive, CorrelationRejectsConstantInput) {
  EXPECT_THROW(pearson_correlation({1, 1, 1}, {1, 2, 3}), emts::precondition_error);
}

}  // namespace
}  // namespace emts::stats
