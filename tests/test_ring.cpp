// TraceRing contract tests: the fixed-capacity window under the streaming
// monitor. Arrival-order iteration, wrap-around eviction and storage-keeping
// clear() are what the zero-allocation hot path leans on.
#include "core/ring.hpp"

#include <gtest/gtest.h>

#include "util/alloc_counter.hpp"
#include "util/assert.hpp"

namespace emts::core {
namespace {

Trace make_trace(double seed, std::size_t n = 8) {
  Trace t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = seed + static_cast<double>(i);
  return t;
}

TEST(TraceRing, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRing{0}, emts::precondition_error);
}

TEST(TraceRing, FillsInArrivalOrder) {
  TraceRing ring{4};
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 3; ++i) ring.push(make_trace(static_cast<double>(i)));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring.oldest(0), make_trace(0.0));
  EXPECT_EQ(ring.oldest(1), make_trace(1.0));
  EXPECT_EQ(ring.oldest(2), make_trace(2.0));
  EXPECT_EQ(ring.newest(), make_trace(2.0));
  EXPECT_EQ(ring.total_pushed(), 3u);
}

TEST(TraceRing, WrapAroundEvictsTheOldest) {
  TraceRing ring{3};
  for (int i = 0; i < 7; ++i) ring.push(make_trace(static_cast<double>(i)));
  // After 7 pushes into 3 slots the window is traces 4, 5, 6.
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.oldest(0), make_trace(4.0));
  EXPECT_EQ(ring.oldest(1), make_trace(5.0));
  EXPECT_EQ(ring.oldest(2), make_trace(6.0));
  EXPECT_EQ(ring.newest(), make_trace(6.0));
  EXPECT_EQ(ring.total_pushed(), 7u);
}

TEST(TraceRing, CapacityOneAlwaysHoldsTheNewest) {
  TraceRing ring{1};
  for (int i = 0; i < 5; ++i) {
    ring.push(make_trace(static_cast<double>(i)));
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.oldest(0), make_trace(static_cast<double>(i)));
    EXPECT_EQ(ring.newest(), ring.oldest(0));
  }
}

TEST(TraceRing, ClearIsLogicalAndRefillsCleanly) {
  TraceRing ring{3};
  for (int i = 0; i < 5; ++i) ring.push(make_trace(static_cast<double>(i)));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_pushed(), 5u);  // lifetime counter survives clear()
  ring.push(make_trace(9.0));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.oldest(0), make_trace(9.0));
}

TEST(TraceRing, OutOfRangeAccessRejected) {
  TraceRing ring{2};
  EXPECT_THROW(ring.newest(), emts::precondition_error);
  EXPECT_THROW(ring.oldest(0), emts::precondition_error);
  ring.push(make_trace(1.0));
  EXPECT_THROW(ring.oldest(1), emts::precondition_error);
}

TEST(TraceRing, SteadyStatePushDoesNotAllocate) {
  if (!util::alloc::counting_active()) {
    GTEST_SKIP() << "allocation hooks disabled in this build (sanitizer)";
  }
  TraceRing ring{4};
  const Trace t = make_trace(3.0, 256);
  // Warm-up: one full revolution sizes every slot.
  for (int i = 0; i < 8; ++i) ring.push(t);
  ring.clear();
  const auto before = util::alloc::thread_counts();
  for (int i = 0; i < 64; ++i) ring.push(t);
  ring.clear();
  const auto after = util::alloc::thread_counts();
  EXPECT_EQ(after.allocations, before.allocations);
}

}  // namespace
}  // namespace emts::core
