// Detector tests on synthetic traces with known structure — the detectors
// never see the chip simulator here, proving the core library stands alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "core/detector.hpp"
#include "core/euclidean.hpp"
#include "core/ring.hpp"
#include "core/spectral.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::core {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 4096;

// Golden trace: clock-like tone + harmonic + noise.
Trace golden_trace(emts::Rng& rng) {
  Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    const double x = static_cast<double>(i);
    t[i] = 1.0 * std::sin(2.0 * units::pi * 48e6 * x / kFs) +
           0.4 * std::sin(2.0 * units::pi * 96e6 * x / kFs) + rng.gaussian(0.0, 0.1);
  }
  return t;
}

TraceSet golden_set(std::size_t n, std::uint64_t seed = 1) {
  emts::Rng rng{seed};
  TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) set.add(golden_trace(rng));
  return set;
}

// Anomalous trace: golden plus an extra tone of given amplitude/frequency.
Trace infected_trace(emts::Rng& rng, double amp, double freq) {
  Trace t = golden_trace(rng);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] += amp * std::sin(2.0 * units::pi * freq * static_cast<double>(i) / kFs);
  }
  return t;
}

// ---------- EuclideanDetector ----------

TEST(EuclideanDetector, GoldenTracesScoreBelowThreshold) {
  const auto det = EuclideanDetector::calibrate(golden_set(40));
  emts::Rng rng{99};
  std::size_t beyond = 0;
  for (int i = 0; i < 50; ++i) {
    beyond += det.is_anomalous(golden_trace(rng));
  }
  // Eq. 1 (max pairwise) is conservative; fresh golden traces should very
  // rarely exceed it.
  EXPECT_LE(beyond, 3u);
}

TEST(EuclideanDetector, StrongAnomalyScoresAboveThreshold) {
  const auto det = EuclideanDetector::calibrate(golden_set(40));
  emts::Rng rng{100};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(det.is_anomalous(infected_trace(rng, 0.5, 31e6))) << i;
  }
}

TEST(EuclideanDetector, ScoreGrowsWithAnomalyAmplitude) {
  const auto det = EuclideanDetector::calibrate(golden_set(40));
  emts::Rng rng{101};
  double prev = 0.0;
  for (double amp : {0.05, 0.2, 0.8}) {
    const double s = det.score(infected_trace(rng, amp, 31e6));
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(EuclideanDetector, ThresholdIsMaxPairwiseGoldenDistance) {
  // With 3 known feature vectors the Eq. 1 threshold is hand-checkable.
  TraceSet tiny;
  tiny.sample_rate = 1e6;
  tiny.add(Trace{1, 0, 0, 0});
  tiny.add(Trace{0, 1, 0, 0});
  tiny.add(Trace{0, 0, 2, 0});
  EuclideanDetector::Options opt;
  opt.preprocess.decimation = 1;
  opt.preprocess.remove_mean = false;
  opt.preprocess.normalize_rms = false;
  opt.pca_components = 3;
  opt.include_residual = false;
  const auto det = EuclideanDetector::calibrate(tiny, opt);
  // Full-rank PCA preserves distances; max pairwise: between traces 2 and 3:
  // sqrt(1 + 4) = sqrt(5).
  EXPECT_NEAR(det.threshold(), std::sqrt(5.0), 1e-9);
}

TEST(EuclideanDetector, ResidualCatchesOutOfSubspaceAnomaly) {
  // Golden variation confined to feature 0; anomaly lives on feature 3.
  emts::Rng rng{7};
  TraceSet golden;
  golden.sample_rate = 1e6;
  for (int i = 0; i < 30; ++i) {
    Trace t(8, 0.0);
    t[0] = rng.gaussian();
    golden.add(t);
  }
  EuclideanDetector::Options opt;
  opt.preprocess.decimation = 1;
  opt.preprocess.remove_mean = false;
  opt.preprocess.normalize_rms = false;
  opt.pca_components = 1;

  opt.include_residual = true;
  const auto with_residual = EuclideanDetector::calibrate(golden, opt);
  opt.include_residual = false;
  const auto without = EuclideanDetector::calibrate(golden, opt);

  Trace anomaly(8, 0.0);
  anomaly[3] = 10.0;  // orthogonal to golden variation
  EXPECT_TRUE(with_residual.is_anomalous(anomaly));
  EXPECT_FALSE(without.is_anomalous(anomaly))
      << "pure projection is blind to orthogonal shifts — the residual term exists for this";
}

TEST(EuclideanDetector, PopulationDistanceSeparatesShiftedSets) {
  const auto det = EuclideanDetector::calibrate(golden_set(30));
  emts::Rng rng{11};
  TraceSet clean;
  clean.sample_rate = kFs;
  TraceSet shifted;
  shifted.sample_rate = kFs;
  for (int i = 0; i < 20; ++i) {
    clean.add(golden_trace(rng));
    shifted.add(infected_trace(rng, 0.3, 31e6));
  }
  EXPECT_GT(det.population_distance(shifted), 4.0 * det.population_distance(clean));
}

TEST(EuclideanDetector, CalibrationRequiresThreeTraces) {
  TraceSet two;
  two.sample_rate = 1e6;
  two.add(Trace{1, 2});
  two.add(Trace{2, 1});
  EXPECT_THROW(EuclideanDetector::calibrate(two), emts::precondition_error);
}

TEST(EuclideanDetector, ScoreAllMatchesScore) {
  const auto det = EuclideanDetector::calibrate(golden_set(20));
  const auto set = golden_set(5, 77);
  const auto scores = det.score_all(set);
  ASSERT_EQ(scores.size(), 5u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], det.score(set.traces[i]));
  }
}

// ---------- SpectralDetector ----------

TEST(SpectralDetector, GoldenSpotsFoundAtClockAndHarmonic) {
  const auto det = SpectralDetector::calibrate(golden_set(16));
  ASSERT_GE(det.golden_spots().size(), 2u);
  // Strongest two spots: 48 MHz and 96 MHz.
  EXPECT_NEAR(det.golden_spots()[0].frequency, 48e6, 1e6);
  EXPECT_NEAR(det.golden_spots()[1].frequency, 96e6, 1e6);
}

TEST(SpectralDetector, CleanSuspectRaisesNoAnomaly) {
  const auto det = SpectralDetector::calibrate(golden_set(16));
  const auto report = det.analyze(golden_set(8, 55));
  EXPECT_FALSE(report.anomalous());
}

TEST(SpectralDetector, NewToneReportedAsNewSpot) {
  const auto det = SpectralDetector::calibrate(golden_set(16));
  emts::Rng rng{5};
  TraceSet suspect;
  suspect.sample_rate = kFs;
  for (int i = 0; i < 8; ++i) suspect.add(infected_trace(rng, 0.3, 72e6));
  const auto report = det.analyze(suspect);
  ASSERT_TRUE(report.anomalous());
  bool found = false;
  for (const auto& a : report.anomalies) {
    if (a.kind == SpectralAnomalyKind::kNewSpot && std::abs(a.frequency_hz - 72e6) < 1e6) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpectralDetector, AmplifiedCarrierReportedAsAmplifiedSpot) {
  const auto det = SpectralDetector::calibrate(golden_set(16));
  emts::Rng rng{6};
  TraceSet suspect;
  suspect.sample_rate = kFs;
  for (int i = 0; i < 8; ++i) {
    suspect.add(infected_trace(rng, 1.2, 48e6));  // doubles the clock tone
  }
  const auto report = det.analyze(suspect);
  ASSERT_TRUE(report.anomalous());
  bool found = false;
  for (const auto& a : report.anomalies) {
    if (a.kind == SpectralAnomalyKind::kAmplifiedSpot && std::abs(a.frequency_hz - 48e6) < 1e6) {
      found = true;
      EXPECT_GT(a.ratio, 1.6);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpectralDetector, WeakToneBelowFloorIgnored) {
  const auto det = SpectralDetector::calibrate(golden_set(16));
  emts::Rng rng{8};
  TraceSet suspect;
  suspect.sample_rate = kFs;
  for (int i = 0; i < 8; ++i) suspect.add(infected_trace(rng, 0.002, 72e6));
  EXPECT_FALSE(det.analyze(suspect).anomalous());
}

TEST(SpectralDetector, AnomaliesSortedByRatio) {
  const auto det = SpectralDetector::calibrate(golden_set(16));
  emts::Rng rng{9};
  TraceSet suspect;
  suspect.sample_rate = kFs;
  for (int i = 0; i < 8; ++i) {
    Trace t = infected_trace(rng, 0.5, 72e6);
    for (std::size_t k = 0; k < kLen; ++k) {
      t[k] += 0.15 * std::sin(2.0 * units::pi * 31e6 * static_cast<double>(k) / kFs);
    }
    suspect.add(t);
  }
  const auto report = det.analyze(suspect);
  ASSERT_GE(report.anomalies.size(), 2u);
  for (std::size_t i = 1; i < report.anomalies.size(); ++i) {
    EXPECT_GE(report.anomalies[i - 1].ratio, report.anomalies[i].ratio);
  }
}

TEST(SpectralDetector, RejectsMismatchedSampleRate) {
  const auto det = SpectralDetector::calibrate(golden_set(4));
  TraceSet wrong;
  wrong.sample_rate = kFs / 2.0;
  wrong.add(Trace(kLen, 0.0));
  EXPECT_THROW(det.analyze(wrong), emts::precondition_error);
}

TEST(SpectralDetector, SingleTraceAnalyzeOverloadWorks) {
  const auto det = SpectralDetector::calibrate(golden_set(8));
  emts::Rng rng{10};
  const auto report = det.analyze(infected_trace(rng, 0.5, 72e6));
  EXPECT_TRUE(report.anomalous());
}

// analyze_reusing streams the mean spectrum through the packed two-for-one
// real FFT, so suspect amplitudes match the copying analyze() path to
// floating-point rounding; anomaly kinds, frequencies and golden references
// must agree exactly.
TEST(SpectralDetector, AnalyzeReusingMatchesAnalyze) {
  const auto det = SpectralDetector::calibrate(golden_set(16));
  emts::Rng rng{60};
  TraceSet suspect;
  suspect.sample_rate = kFs;
  for (int i = 0; i < 8; ++i) suspect.add(infected_trace(rng, 0.4, 72e6));

  TraceRing ring{8};
  for (const auto& t : suspect.traces) ring.push(t);

  const SpectralReport copied = det.analyze(suspect);
  auto scratch = det.make_scratch();
  const SpectralReport& reused = det.analyze_reusing(ring, kFs, scratch);

  ASSERT_EQ(reused.anomalies.size(), copied.anomalies.size());
  ASSERT_TRUE(copied.anomalous());
  for (std::size_t i = 0; i < copied.anomalies.size(); ++i) {
    EXPECT_EQ(reused.anomalies[i].kind, copied.anomalies[i].kind) << i;
    EXPECT_EQ(reused.anomalies[i].frequency_hz, copied.anomalies[i].frequency_hz) << i;
    // Golden amplitudes come straight from calibration state — exact.
    EXPECT_EQ(reused.anomalies[i].golden_amplitude, copied.anomalies[i].golden_amplitude) << i;
    // Suspect-side values ride the packed FFT: rounding-level agreement.
    EXPECT_NEAR(reused.anomalies[i].suspect_amplitude, copied.anomalies[i].suspect_amplitude,
                1e-9 * std::abs(copied.anomalies[i].suspect_amplitude)) << i;
    EXPECT_NEAR(reused.anomalies[i].ratio, copied.anomalies[i].ratio,
                1e-9 * std::abs(copied.anomalies[i].ratio)) << i;
  }

  // A second pass through the same scratch reproduces the report.
  const SpectralReport snapshot = reused;
  const SpectralReport& again = det.analyze_reusing(ring, kFs, scratch);
  ASSERT_EQ(again.anomalies.size(), snapshot.anomalies.size());
  for (std::size_t i = 0; i < snapshot.anomalies.size(); ++i) {
    EXPECT_EQ(again.anomalies[i].ratio, snapshot.anomalies[i].ratio) << i;
  }
}

TEST(SpectralDetector, AnalyzeReusingRejectsBadWindow) {
  const auto det = SpectralDetector::calibrate(golden_set(4));
  auto scratch = det.make_scratch();
  TraceRing empty{4};
  EXPECT_THROW(det.analyze_reusing(empty, kFs, scratch), emts::precondition_error);
  TraceRing ring{4};
  ring.push(Trace(kLen, 0.0));
  EXPECT_THROW(det.analyze_reusing(ring, kFs / 2.0, scratch), emts::precondition_error);
}

// Regression: a calibration campaign with a corrupt sample rate must be
// rejected up front — a 0/inf/NaN rate silently poisons every frequency the
// detector reports.
TEST(SpectralDetector, CalibrationRejectsBadSampleRate) {
  for (double bad : {0.0, -1.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    TraceSet golden = golden_set(4);
    golden.sample_rate = bad;
    EXPECT_THROW(SpectralDetector::calibrate(golden), emts::precondition_error)
        << "sample_rate = " << bad;
  }
}

// Regression: load() must validate the sample rate too — a corrupted
// calibration artifact is the deployment-time twin of the test above. The
// serialized f64 sits at byte offset 37 (u32 window + u8 remove_mean +
// 3 x f64 factors + u64 match_bins).
TEST(SpectralDetector, LoadRejectsCorruptSampleRate) {
  const auto det = SpectralDetector::calibrate(golden_set(4));
  std::ostringstream out;
  det.save(out);
  std::string payload = out.str();

  std::ostringstream inf_bytes;
  util::write_f64(inf_bytes, std::numeric_limits<double>::infinity());
  payload.replace(37, 8, inf_bytes.str());

  std::istringstream in{payload};
  EXPECT_THROW(SpectralDetector::load(in), emts::precondition_error);

  // Unpatched payload still round-trips.
  std::istringstream clean{out.str()};
  const auto restored = SpectralDetector::load(clean);
  EXPECT_EQ(restored.sample_rate(), det.sample_rate());
}

// ---------- Detector interface & registry ----------

TEST(DetectorInterface, BuiltInsAreRegistered) {
  auto& registry = DetectorRegistry::instance();
  EXPECT_TRUE(registry.contains("euclidean"));
  EXPECT_TRUE(registry.contains("spectral"));
  EXPECT_FALSE(registry.contains("no-such-detector"));
  const auto names = registry.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "euclidean"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "spectral"), names.end());
}

TEST(DetectorInterface, RegistryCalibrateMatchesDirectCalibrate) {
  const auto golden = golden_set(20);
  const auto via_registry = DetectorRegistry::instance().calibrate("euclidean", golden);
  const auto direct = EuclideanDetector::calibrate(golden);
  ASSERT_NE(via_registry, nullptr);
  EXPECT_EQ(via_registry->name(), "euclidean");
  emts::Rng rng{42};
  const Trace probe = golden_trace(rng);
  EXPECT_DOUBLE_EQ(via_registry->score(probe), direct.score(probe));
  EXPECT_DOUBLE_EQ(via_registry->threshold(), direct.threshold());
}

TEST(DetectorInterface, UnknownNameThrows) {
  EXPECT_THROW(DetectorRegistry::instance().calibrate("no-such-detector", golden_set(4)),
               emts::precondition_error);
}

TEST(DetectorInterface, PolymorphicScoringThroughBasePointer) {
  const auto golden = golden_set(20);
  std::vector<std::shared_ptr<const Detector>> stack;
  stack.push_back(std::make_shared<const EuclideanDetector>(EuclideanDetector::calibrate(golden)));
  stack.push_back(std::make_shared<const SpectralDetector>(SpectralDetector::calibrate(golden)));

  emts::Rng rng{43};
  // Composite anomaly: a slow tone that survives the Euclidean stage's 16x
  // decimation plus a fast tone for the spectral stage.
  Trace bad = infected_trace(rng, 0.8, 72e6);
  for (std::size_t i = 0; i < kLen; ++i) {
    bad[i] += 0.5 * std::sin(2.0 * units::pi * 3e6 * static_cast<double>(i) / kFs);
  }
  for (const auto& detector : stack) {
    EXPECT_FALSE(detector->name().empty());
    EXPECT_FALSE(detector->describe().empty());
    EXPECT_TRUE(detector->is_anomalous(bad)) << detector->name();
  }
}

TEST(DetectorInterface, SpectralIsWindowedWithZeroThreshold) {
  const auto det = SpectralDetector::calibrate(golden_set(8));
  EXPECT_TRUE(det.windowed());
  EXPECT_FALSE(EuclideanDetector::calibrate(golden_set(8)).windowed());
  // score() is the strongest anomaly ratio, so any positive score beats the
  // 0.0 threshold: is_anomalous(trace) == "analyze found something".
  EXPECT_DOUBLE_EQ(det.threshold(), 0.0);
  emts::Rng rng{44};
  EXPECT_GT(det.score(infected_trace(rng, 0.5, 72e6)), 0.0);
}

TEST(DetectorInterface, EvaluateSetReportsFractionAndAlarm) {
  const auto golden = golden_set(20);
  const auto det = EuclideanDetector::calibrate(golden);
  emts::Rng rng{45};
  TraceSet suspect;
  suspect.sample_rate = kFs;
  for (int i = 0; i < 10; ++i) suspect.add(infected_trace(rng, 0.8, 31e6));
  const DetectorReport report = det.evaluate_set(suspect, 0.5);
  EXPECT_EQ(report.name, "euclidean");
  EXPECT_TRUE(report.alarm);
  EXPECT_GT(report.anomalous_fraction, 0.9);
  EXPECT_GE(report.max_score, report.mean_score);
  EXPECT_NE(report.detail.find("threshold"), std::string::npos);
}

}  // namespace
}  // namespace emts::core
