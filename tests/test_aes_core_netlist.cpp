// The substrate's flagship validation: a complete AES-128 encryption runs
// through the gate-level core — 16 synthesized S-boxes, ShiftRows wiring,
// MixColumns XOR networks, AddRoundKey, 128 flops — one round per clock
// edge on the event-driven simulator, and the result matches FIPS-197.
#include <gtest/gtest.h>

#include "aes/aes128.hpp"
#include "aes/datapath_netlist.hpp"
#include "netlist/simulator.hpp"
#include "util/rng.hpp"

namespace emts::aes {
namespace {

using netlist::Simulator;

// Runs one gate-level encryption: load + 10 round edges.
Block gate_level_encrypt(const AesCoreNetlist& core, Simulator& sim, const Key& key,
                         const Block& plaintext) {
  const auto round_keys = expand_key(key);
  const auto set_block = [&](const std::vector<netlist::NetId>& bus, const Block& value) {
    for (int i = 0; i < 128; ++i) {
      sim.set_input(bus[static_cast<std::size_t>(i)],
                    ((value[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1u) != 0);
    }
  };

  set_block(core.plaintext, plaintext);
  set_block(core.round_key, round_keys[0]);
  sim.set_input(core.load, true);
  sim.set_input(core.final_round, false);
  sim.clock_edge();  // state <- pt ^ k0

  sim.set_input(core.load, false);
  for (int round = 1; round <= 10; ++round) {
    set_block(core.round_key, round_keys[static_cast<std::size_t>(round)]);
    sim.set_input(core.final_round, round == 10);
    sim.clock_edge();
  }

  Block out{};
  for (int i = 0; i < 128; ++i) {
    if (sim.value(core.state_q[static_cast<std::size_t>(i)])) {
      out[static_cast<std::size_t>(i / 8)] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  return out;
}

struct CoreFixture {
  AesCoreNetlist core = build_aes_core_netlist();
  Simulator sim{core.netlist};
};

CoreFixture& fixture() {
  static CoreFixture instance;  // building 16 S-boxes once is enough
  return instance;
}

TEST(AesCoreNetlist, FipsAppendixBVectorGateByGate) {
  const Key key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const Block pt{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  auto& f = fixture();
  f.sim.reset();
  EXPECT_EQ(gate_level_encrypt(f.core, f.sim, key, pt), encrypt(key, pt));
}

TEST(AesCoreNetlist, RandomVectorsMatchReferenceCipher) {
  auto& f = fixture();
  emts::Rng rng{2026};
  for (int trial = 0; trial < 3; ++trial) {
    Key key{};
    Block pt{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u32());
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u32());
    f.sim.reset();
    EXPECT_EQ(gate_level_encrypt(f.core, f.sim, key, pt), encrypt(key, pt)) << "trial " << trial;
  }
}

TEST(AesCoreNetlist, BackToBackEncryptionsNeedNoReset) {
  // A fresh load must fully re-initialize the state — run two encryptions
  // through the same simulator instance without reset().
  auto& f = fixture();
  f.sim.reset();
  const Key key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  Block pt1{};
  Block pt2{};
  pt1.fill(0x11);
  pt2.fill(0xee);
  EXPECT_EQ(gate_level_encrypt(f.core, f.sim, key, pt1), encrypt(key, pt1));
  EXPECT_EQ(gate_level_encrypt(f.core, f.sim, key, pt2), encrypt(key, pt2));
}

TEST(AesCoreNetlist, CellCountIsInTheSynthesisModelRange) {
  const auto report = fixture().core.netlist.gate_count();
  // Our BDD-style synthesizer shares sub-functions aggressively (~430 cells
  // per S-box vs the paper-era flat-LUT ~1,290), so the datapath core lands
  // below the calibrated 33k-cell chip model but in the same regime.
  EXPECT_GT(report.cell_count, 5000u);
  EXPECT_LT(report.cell_count, 40000u);
  EXPECT_EQ(fixture().core.netlist.flops().size(), 128u);
}

TEST(AesCoreNetlist, SwitchingActivityIsDataDependent) {
  // Gate-level confirmation of the activity model's core premise: different
  // plaintexts toggle different numbers of gates per round.
  auto& f = fixture();
  const Key key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  Block pt_a{};
  Block pt_b{};
  pt_b.fill(0x5a);

  f.sim.reset();
  gate_level_encrypt(f.core, f.sim, key, pt_a);
  const auto toggles_a = f.sim.total_toggles();
  f.sim.reset();
  gate_level_encrypt(f.core, f.sim, key, pt_b);
  const auto toggles_b = f.sim.total_toggles();

  EXPECT_NE(toggles_a, toggles_b);
  EXPECT_GT(toggles_a, 10000u) << "a full encryption toggles tens of thousands of gates";
}

}  // namespace
}  // namespace emts::aes
