// Option-surface tests for the detector stack: every knob the Options
// structs expose must actually change behaviour the way its doc comment
// promises.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::core {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

Trace golden_trace(emts::Rng& rng) {
  Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

TraceSet golden_set(std::size_t n, std::uint64_t seed) {
  emts::Rng rng{seed};
  TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) set.add(golden_trace(rng));
  return set;
}

TraceSet toned_set(std::size_t n, std::uint64_t seed, double amp, double freq) {
  TraceSet set = golden_set(n, seed);
  for (Trace& t : set.traces) {
    for (std::size_t i = 0; i < kLen; ++i) {
      t[i] += amp * std::sin(2.0 * units::pi * freq * static_cast<double>(i) / kFs);
    }
  }
  return set;
}

// ---------- spectral options ----------

TEST(SpectralOptions, AmplificationRatioGatesAmplifiedSpots) {
  const auto golden = golden_set(12, 1);
  // Suspect: clock tone grown by ~40%.
  const auto suspect = toned_set(8, 2, 0.4, 48e6);

  SpectralDetector::Options strict;
  strict.amplification_ratio = 2.0;  // 1.4x growth must NOT trip
  EXPECT_FALSE(SpectralDetector::calibrate(golden, strict).analyze(suspect).anomalous());

  SpectralDetector::Options loose;
  loose.amplification_ratio = 1.2;  // 1.4x growth must trip
  const auto report = SpectralDetector::calibrate(golden, loose).analyze(suspect);
  ASSERT_TRUE(report.anomalous());
  EXPECT_EQ(report.anomalies.front().kind, SpectralAnomalyKind::kAmplifiedSpot);
}

TEST(SpectralOptions, MatchBinsControlsSpotMatching) {
  const auto golden = golden_set(12, 3);
  // Tone slightly off the clock bin: with a wide match window it reads as an
  // amplified clock spot; with zero tolerance it becomes a new spot.
  const double off_clock = 48e6 + 3.0 * kFs / static_cast<double>(kLen);
  const auto suspect = toned_set(8, 4, 0.9, off_clock);

  SpectralDetector::Options wide;
  wide.match_bins = 8;
  const auto report_wide = SpectralDetector::calibrate(golden, wide).analyze(suspect);
  SpectralDetector::Options narrow;
  narrow.match_bins = 0;
  const auto report_narrow = SpectralDetector::calibrate(golden, narrow).analyze(suspect);

  bool narrow_has_new = false;
  for (const auto& a : report_narrow.anomalies) {
    narrow_has_new |= (a.kind == SpectralAnomalyKind::kNewSpot);
  }
  EXPECT_TRUE(narrow_has_new);
  bool wide_has_new_near_clock = false;
  for (const auto& a : report_wide.anomalies) {
    if (a.kind == SpectralAnomalyKind::kNewSpot && std::abs(a.frequency_hz - off_clock) < 1e6) {
      wide_has_new_near_clock = true;
    }
  }
  EXPECT_FALSE(wide_has_new_near_clock) << "wide matching should absorb the near-clock tone";
}

TEST(SpectralOptions, NewSpotFactorSetsSensitivity) {
  const auto golden = golden_set(12, 5);
  const auto suspect = toned_set(8, 6, 0.05, 100e6);  // weak new tone

  SpectralDetector::Options sensitive;
  sensitive.new_spot_factor = 2.0;
  SpectralDetector::Options deaf;
  deaf.new_spot_factor = 500.0;
  EXPECT_TRUE(SpectralDetector::calibrate(golden, sensitive).analyze(suspect).anomalous());
  EXPECT_FALSE(SpectralDetector::calibrate(golden, deaf).analyze(suspect).anomalous());
}

// ---------- evaluator verdict matrix ----------

TEST(EvaluatorVerdicts, DistanceOnlyAnomalyIsSuspicious) {
  const auto golden = golden_set(24, 7);
  const auto eval = TrustEvaluator::calibrate(golden);
  // Slow drift raises distances but creates no clean spectral peak: a large
  // DC-ish offset (mean removal kills it spectrally; features keep shape
  // change via a low-frequency ramp).
  TraceSet suspect = golden_set(10, 8);
  for (Trace& t : suspect.traces) {
    for (std::size_t i = 0; i < kLen; ++i) {
      t[i] += 0.8 * static_cast<double>(i) / static_cast<double>(kLen);  // ramp
    }
  }
  const auto report = eval.evaluate(suspect);
  EXPECT_GT(report.anomalous_fraction, 0.9);
  EXPECT_EQ(report.verdict, report.spectral.anomalous() ? Verdict::kCompromised
                                                        : Verdict::kSuspicious);
}

TEST(EvaluatorVerdicts, BothStagesFiringIsCompromised) {
  const auto golden = golden_set(24, 9);
  const auto eval = TrustEvaluator::calibrate(golden);
  // Big slow tone: survives decimation (distance) and is a clean new
  // spectral spot.
  const auto suspect = toned_set(10, 10, 0.5, 3e6);
  const auto report = eval.evaluate(suspect);
  EXPECT_EQ(report.verdict, Verdict::kCompromised) << report.summary();
}

TEST(EvaluatorVerdicts, AlarmFractionKnobChangesVerdict) {
  const auto golden = golden_set(24, 11);
  // A suspect set where only some traces are anomalous.
  TraceSet mixed = golden_set(8, 12);
  {
    emts::Rng rng{13};
    TraceSet bad = toned_set(2, 14, 0.5, 3e6);
    for (auto& t : bad.traces) mixed.add(std::move(t));
    (void)rng;
  }

  TrustEvaluator::Options tolerant;
  tolerant.anomalous_fraction_alarm = 0.5;  // 20% anomalous -> calm
  TrustEvaluator::Options strict;
  strict.anomalous_fraction_alarm = 0.05;  // 20% anomalous -> alarmed

  const auto verdict_tolerant =
      TrustEvaluator::calibrate(golden, tolerant).evaluate(mixed).verdict;
  const auto report_strict = TrustEvaluator::calibrate(golden, strict).evaluate(mixed);
  EXPECT_GE(static_cast<int>(report_strict.verdict), static_cast<int>(verdict_tolerant));
  EXPECT_NE(report_strict.verdict, Verdict::kTrusted);
}

// ---------- preprocessing knobs ----------

TEST(PreprocessOptions, NormalizationHidesAmplitudeAnomalies) {
  const auto golden = golden_set(24, 15);
  TraceSet louder = golden_set(10, 16);
  for (Trace& t : louder.traces) {
    for (double& v : t) v *= 3.0;  // strong amplitude increase (a la T4)
  }

  EuclideanDetector::Options raw;
  raw.preprocess.normalize_rms = false;
  EuclideanDetector::Options normalized;
  normalized.preprocess.normalize_rms = true;

  const auto det_raw = EuclideanDetector::calibrate(golden, raw);
  const auto det_norm = EuclideanDetector::calibrate(golden, normalized);
  const double margin_raw = det_raw.population_distance(louder) / det_raw.threshold();
  const double margin_norm = det_norm.population_distance(louder) / det_norm.threshold();
  EXPECT_GT(margin_raw, 1.0);
  EXPECT_LT(margin_norm, 0.5 * margin_raw)
      << "RMS normalization must blunt a pure amplitude signature";
}

TEST(PreprocessOptions, DecimationTradesDimensionForNoise) {
  const auto golden = golden_set(24, 17);
  for (std::size_t dec : {4u, 16u, 64u}) {
    EuclideanDetector::Options opt;
    opt.preprocess.decimation = dec;
    const auto det = EuclideanDetector::calibrate(golden, opt);
    EXPECT_GT(det.threshold(), 0.0) << "decimation " << dec;
  }
}

}  // namespace
}  // namespace emts::core
