#include "io/trace_archive.hpp"

#include <gtest/gtest.h>

#include "io/mmap_archive.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::io {
namespace {

class TraceArchiveTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }

  core::TraceSet random_set(std::size_t n, std::size_t len, std::uint64_t seed) {
    Rng rng{seed};
    core::TraceSet set;
    set.sample_rate = 384e6;
    for (std::size_t t = 0; t < n; ++t) {
      core::Trace trace(len);
      for (double& v : trace) v = rng.gaussian();
      set.add(trace);
    }
    return set;
  }

  std::string path_ =
      (std::filesystem::temp_directory_path() / "emts_archive_test.bin").string();
};

TEST_F(TraceArchiveTest, RoundTripPreservesEverything) {
  const auto original = random_set(7, 256, 1);
  save_trace_archive(path_, original);
  const auto loaded = load_trace_archive(path_);
  EXPECT_DOUBLE_EQ(loaded.sample_rate, original.sample_rate);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.trace_length(), original.trace_length());
  for (std::size_t t = 0; t < original.size(); ++t) {
    for (std::size_t i = 0; i < original.trace_length(); ++i) {
      ASSERT_DOUBLE_EQ(loaded.traces[t][i], original.traces[t][i]);
    }
  }
}

TEST_F(TraceArchiveTest, BitExactForExtremeValues) {
  core::TraceSet set;
  set.sample_rate = 1.0;
  set.add(core::Trace{0.0, -0.0, 1e-308, 1e308, -3.141592653589793});
  save_trace_archive(path_, set);
  const auto loaded = load_trace_archive(path_);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(loaded.traces[0][i], set.traces[0][i]);
  }
}

TEST_F(TraceArchiveTest, RejectsEmptySet) {
  core::TraceSet empty;
  empty.sample_rate = 1e6;
  EXPECT_THROW(save_trace_archive(path_, empty), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsMissingFile) {
  EXPECT_THROW(load_trace_archive("/nonexistent/emts.bin"), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsBadMagic) {
  std::ofstream out{path_, std::ios::binary};
  out << "NOT-AN-ARCHIVE-AT-ALL-1234567890123456789012345678901234567890";
  out.close();
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsTruncatedPayload) {
  const auto original = random_set(4, 128, 2);
  save_trace_archive(path_, original);
  // Chop the file short.
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 64);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsTruncatedHeader) {
  std::ofstream out{path_, std::ios::binary};
  out << "EM";
  out.close();
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

// Header layout (32 bytes): magic[4] @0, u32 version @4, u64 trace_count @8,
// u64 trace_length @16, f64 sample_rate @24.
void patch_bytes(const std::string& path, std::streamoff offset, const void* bytes,
                 std::size_t size) {
  std::fstream file{path, std::ios::binary | std::ios::in | std::ios::out};
  ASSERT_TRUE(file.good());
  file.seekp(offset);
  file.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(size));
  ASSERT_TRUE(file.good());
}

TEST_F(TraceArchiveTest, RejectsWrongVersion) {
  save_trace_archive(path_, random_set(3, 64, 3));
  const std::uint32_t bogus_version = 99;
  patch_bytes(path_, 4, &bogus_version, sizeof bogus_version);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsZeroTraceCount) {
  save_trace_archive(path_, random_set(3, 64, 4));
  const std::uint64_t zero = 0;
  patch_bytes(path_, 8, &zero, sizeof zero);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsZeroTraceLength) {
  save_trace_archive(path_, random_set(3, 64, 5));
  const std::uint64_t zero = 0;
  patch_bytes(path_, 16, &zero, sizeof zero);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsNonFiniteSampleRate) {
  save_trace_archive(path_, random_set(3, 64, 6));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  patch_bytes(path_, 24, &nan, sizeof nan);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsTrailingGarbage) {
  save_trace_archive(path_, random_set(3, 64, 7));
  std::ofstream out{path_, std::ios::binary | std::ios::app};
  out << "extra bytes past the declared payload";
  out.close();
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsImplausibleTraceCount) {
  save_trace_archive(path_, random_set(3, 64, 8));
  const std::uint64_t huge = 1ull << 40;
  patch_bytes(path_, 8, &huge, sizeof huge);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsImplausibleTraceLength) {
  // A declared length the file cannot hold must be refused from the header
  // alone — before any reserve() sized by attacker-controlled bytes.
  save_trace_archive(path_, random_set(3, 64, 9));
  const std::uint64_t huge = 1ull << 40;
  patch_bytes(path_, 16, &huge, sizeof huge);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsShapeProductThatWrapsU64) {
  // Each factor is individually under the 2^32 plausibility cap, but
  // 2^31 * 2^30 * 8 = 2^64 wraps to exactly 0 in u64 — so an unchecked
  // shape check would accept a 32-byte header-only file and hand out
  // pointers to 2^64 bytes of samples that do not exist.
  save_trace_archive(path_, random_set(1, 1, 10));
  std::filesystem::resize_file(path_, 32);  // header only: payload bytes = 0
  const std::uint64_t count = 1ull << 31;
  const std::uint64_t length = 1ull << 30;
  patch_bytes(path_, 8, &count, sizeof count);
  patch_bytes(path_, 16, &length, sizeof length);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
  EXPECT_THROW(MappedTraceArchive{path_}, emts::precondition_error);
}

TEST_F(TraceArchiveTest, RejectsShapeTimesEightThatWrapsU64) {
  // The count*length product fits u64; only the *8 byte conversion wraps
  // (2^31 * 2^30 = 2^61, times 8 = 2^64 ≡ 0). Both multiplications must be
  // checked, not just the first.
  save_trace_archive(path_, random_set(1, 1, 11));
  std::filesystem::resize_file(path_, 32);
  const std::uint64_t count = (1ull << 31) - 1;
  const std::uint64_t length = (1ull << 32) - 1;
  patch_bytes(path_, 8, &count, sizeof count);
  patch_bytes(path_, 16, &length, sizeof length);
  EXPECT_THROW(load_trace_archive(path_), emts::precondition_error);
  EXPECT_THROW(MappedTraceArchive{path_}, emts::precondition_error);
}

}  // namespace
}  // namespace emts::io
