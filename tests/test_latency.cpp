// LatencyHistogram and allocation-counter tests: the observability
// primitives under MonitorStats and the zero-allocation benchmarks.
#include "util/latency.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/alloc_counter.hpp"
#include "util/assert.hpp"

namespace emts::util {
namespace {

TEST(LatencyHistogram, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_ns(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50_ns(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99_ns(), 0.0);
}

TEST(LatencyHistogram, TracksCountTotalAndExtremes) {
  LatencyHistogram h;
  for (std::uint64_t v : {100u, 200u, 400u, 800u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.total_ns(), 1500u);
  EXPECT_EQ(h.min_ns(), 100u);
  EXPECT_EQ(h.max_ns(), 800u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 375.0);
}

TEST(LatencyHistogram, QuantilesAreExactAtTheExtremes) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile_ns(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile_ns(1.0), 1000.0);
}

TEST(LatencyHistogram, QuantilesAreOrderedAndBounded) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  const double p50 = h.p50_ns();
  const double p90 = h.p90_ns();
  const double p99 = h.p99_ns();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, static_cast<double>(h.min_ns()));
  EXPECT_LE(p99, static_cast<double>(h.max_ns()));
  // Power-of-two buckets are coarse, but the median of 1..10000 must land
  // within its bucket's factor-of-two of the true value.
  EXPECT_GT(p50, 2500.0);
  EXPECT_LT(p50, 10000.0);
}

TEST(LatencyHistogram, HandlesZeroAndHugeSamples) {
  LatencyHistogram h;
  h.record(0);
  h.record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), UINT64_MAX);
  EXPECT_DOUBLE_EQ(h.quantile_ns(0.0), 0.0);
}

TEST(LatencyHistogram, RejectsBadQuantile) {
  LatencyHistogram h;
  h.record(5);
  EXPECT_THROW(h.quantile_ns(-0.1), emts::precondition_error);
  EXPECT_THROW(h.quantile_ns(1.1), emts::precondition_error);
}

TEST(LatencyHistogram, ResetRestoresTheEmptyState) {
  LatencyHistogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  for (std::uint64_t b : h.buckets()) EXPECT_EQ(b, 0u);
}

TEST(LatencyHistogram, RecordIsAllocationFree) {
  if (!alloc::counting_active()) {
    GTEST_SKIP() << "allocation hooks disabled in this build (sanitizer)";
  }
  LatencyHistogram h;
  const auto before = alloc::thread_counts();
  for (std::uint64_t v = 0; v < 10000; ++v) h.record(v);
  const auto after = alloc::thread_counts();
  EXPECT_EQ(after.allocations, before.allocations);
}

TEST(MonotonicClock, IsNonDecreasing) {
  const std::uint64_t a = monotonic_ns();
  const std::uint64_t b = monotonic_ns();
  EXPECT_LE(a, b);
}

TEST(AllocCounter, CountsNewAndDelete) {
  if (!alloc::counting_active()) {
    GTEST_SKIP() << "allocation hooks disabled in this build (sanitizer)";
  }
  const auto before = alloc::thread_counts();
  {
    std::vector<double> v(1024);
    v[0] = 1.0;
  }
  const auto after = alloc::thread_counts();
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GT(after.deallocations, before.deallocations);
  EXPECT_GE(after.bytes - before.bytes, 1024 * sizeof(double));
}

TEST(AllocCounter, ResetZeroesTheThreadCounters) {
  if (!alloc::counting_active()) {
    GTEST_SKIP() << "allocation hooks disabled in this build (sanitizer)";
  }
  alloc::reset_thread_counts();
  const auto counts = alloc::thread_counts();
  EXPECT_EQ(counts.allocations, 0u);
  EXPECT_EQ(counts.bytes, 0u);
}

}  // namespace
}  // namespace emts::util
