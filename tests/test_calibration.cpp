// EMCA calibration artifact tests: the contract is bit-identical round-trip
// (a loaded evaluator scores every trace exactly as the one that was saved)
// plus hard rejection of corrupt or incompatible artifacts.
#include "io/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "baseline/ron.hpp"
#include "core/monitor.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::io {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

core::Trace golden_trace(emts::Rng& rng) {
  core::Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

core::Trace infected_trace(emts::Rng& rng) {
  core::Trace t = golden_trace(rng);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] += 0.6 * std::sin(2.0 * units::pi * 72e6 * static_cast<double>(i) / kFs) +
            0.3 * std::sin(2.0 * units::pi * 3e6 * static_cast<double>(i) / kFs);
  }
  return t;
}

core::TraceSet make_set(std::size_t n, bool infected, std::uint64_t seed) {
  emts::Rng rng{seed};
  core::TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) {
    set.add(infected ? infected_trace(rng) : golden_trace(rng));
  }
  return set;
}

class CalibrationArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override { baseline::register_ron_detector(); }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_ =
      (std::filesystem::temp_directory_path() / "emts_calibration_test.emca").string();
};

TEST_F(CalibrationArtifactTest, RoundTripScoresAreBitIdentical) {
  const auto original = core::TrustEvaluator::calibrate(make_set(30, false, 1));
  save_calibration(path_, original);
  const auto loaded = load_calibration(path_);

  EXPECT_EQ(loaded.sample_rate(), original.sample_rate());
  ASSERT_EQ(loaded.detectors().size(), original.detectors().size());
  for (std::size_t d = 0; d < original.detectors().size(); ++d) {
    EXPECT_EQ(loaded.detectors()[d]->name(), original.detectors()[d]->name());
    // Exact comparison on purpose: the artifact stores every fitted double
    // raw, so the threshold must round-trip to the bit.
    EXPECT_EQ(loaded.detectors()[d]->threshold(), original.detectors()[d]->threshold());
  }

  emts::Rng rng{2};
  for (int i = 0; i < 10; ++i) {
    const core::Trace clean = golden_trace(rng);
    const core::Trace bad = infected_trace(rng);
    for (std::size_t d = 0; d < original.detectors().size(); ++d) {
      if (original.detectors()[d]->windowed()) continue;
      EXPECT_EQ(loaded.detectors()[d]->score(clean), original.detectors()[d]->score(clean));
      EXPECT_EQ(loaded.detectors()[d]->score(bad), original.detectors()[d]->score(bad));
    }
  }
}

TEST_F(CalibrationArtifactTest, RoundTripEvaluationIsIdentical) {
  const auto original = core::TrustEvaluator::calibrate(make_set(30, false, 3));
  save_calibration(path_, original);
  const auto loaded = load_calibration(path_);

  const auto suspect = make_set(16, true, 4);
  const auto before = original.evaluate(suspect);
  const auto after = loaded.evaluate(suspect);

  EXPECT_EQ(after.verdict, before.verdict);
  ASSERT_EQ(after.stages.size(), before.stages.size());
  for (std::size_t s = 0; s < before.stages.size(); ++s) {
    EXPECT_EQ(after.stages[s].mean_score, before.stages[s].mean_score);
    EXPECT_EQ(after.stages[s].max_score, before.stages[s].max_score);
    EXPECT_EQ(after.stages[s].threshold, before.stages[s].threshold);
    EXPECT_EQ(after.stages[s].anomalous_fraction, before.stages[s].anomalous_fraction);
    EXPECT_EQ(after.stages[s].alarm, before.stages[s].alarm);
  }
  ASSERT_EQ(after.spectral.anomalies.size(), before.spectral.anomalies.size());
  for (std::size_t a = 0; a < before.spectral.anomalies.size(); ++a) {
    EXPECT_EQ(after.spectral.anomalies[a].frequency_hz, before.spectral.anomalies[a].frequency_hz);
    EXPECT_EQ(after.spectral.anomalies[a].ratio, before.spectral.anomalies[a].ratio);
    EXPECT_EQ(after.spectral.anomalies[a].kind, before.spectral.anomalies[a].kind);
  }
}

TEST_F(CalibrationArtifactTest, RonStackRoundTrips) {
  core::TrustEvaluator::Options options;
  options.detectors = {"euclidean", "spectral", "ron"};
  const auto original = core::TrustEvaluator::calibrate(make_set(30, false, 5), options);
  save_calibration(path_, original);
  const auto loaded = load_calibration(path_);

  ASSERT_EQ(loaded.detectors().size(), 3u);
  const auto* ron = loaded.find("ron");
  ASSERT_NE(ron, nullptr);
  emts::Rng rng{6};
  const core::Trace probe = golden_trace(rng);
  EXPECT_EQ(ron->score(probe), original.find("ron")->score(probe));
  EXPECT_EQ(ron->threshold(), original.find("ron")->threshold());
}

TEST_F(CalibrationArtifactTest, ColdStartMonitorSkipsCalibration) {
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(30, false, 7)));
  auto evaluator = load_calibration(path_);

  core::RuntimeMonitor::Options options;
  options.alarm_debounce = 3;
  options.spectral_window = 8;
  core::RuntimeMonitor monitor{evaluator.sample_rate(), std::move(evaluator), options};
  EXPECT_EQ(monitor.state(), core::MonitorState::kMonitoring);
  EXPECT_EQ(monitor.traces_seen(), 0u);

  emts::Rng rng{8};
  for (int i = 0; i < 8 && monitor.state() != core::MonitorState::kAlarm; ++i) {
    monitor.push(infected_trace(rng));
  }
  EXPECT_EQ(monitor.state(), core::MonitorState::kAlarm);
}

TEST_F(CalibrationArtifactTest, RejectsMissingFile) {
  EXPECT_THROW(load_calibration("/nonexistent/model.emca"), emts::precondition_error);
}

TEST_F(CalibrationArtifactTest, RejectsBadMagic) {
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(20, false, 9)));
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  file.write("NOPE", 4);
  file.close();
  EXPECT_THROW(load_calibration(path_), emts::precondition_error);
}

TEST_F(CalibrationArtifactTest, RejectsWrongVersion) {
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(20, false, 10)));
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  file.seekp(4);
  const std::uint32_t bogus = 42;
  file.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  file.close();
  EXPECT_THROW(load_calibration(path_), emts::precondition_error);
}

TEST_F(CalibrationArtifactTest, RejectsTruncatedArtifact) {
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(20, false, 11)));
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 32);
  EXPECT_THROW(load_calibration(path_), emts::precondition_error);
}

TEST_F(CalibrationArtifactTest, RejectsTrailingGarbage) {
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(20, false, 12)));
  std::ofstream out{path_, std::ios::binary | std::ios::app};
  out << "garbage past the last detector payload";
  out.close();
  EXPECT_THROW(load_calibration(path_), emts::precondition_error);
}

TEST_F(CalibrationArtifactTest, RejectsAbsurdDetectorNameLength) {
  // EMCA header is 28 bytes (magic, version, two f64s, detector count); the
  // first detector's name-length u32 sits right after it. Declaring a name
  // the stream cannot hold must fail before any allocation.
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(20, false, 14)));
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  file.seekp(28);
  const std::uint32_t huge = 0x7fffffffu;
  file.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  file.close();
  EXPECT_THROW(load_calibration(path_), emts::precondition_error);
}

TEST_F(CalibrationArtifactTest, RejectsAbsurdDetectorPayloadSize) {
  // The length-framed detector payload (u64 after the 9-byte "euclidean"
  // name) is checked against the stream's remaining bytes before use.
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(20, false, 15)));
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  file.seekp(28 + 4 + 9);
  const std::uint64_t huge = 1ull << 40;
  file.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  file.close();
  EXPECT_THROW(load_calibration(path_), emts::precondition_error);
}

TEST_F(CalibrationArtifactTest, RejectsUnknownDetectorName) {
  save_calibration(path_, core::TrustEvaluator::calibrate(make_set(20, false, 13)));
  // The first detector name ("euclidean", u32 length 9 at byte 24) is
  // overwritten in place with an unregistered one of the same length.
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  file.seekp(4 + 4 + 8 + 8 + 4 + 4);
  file.write("euclidoon", 9);
  file.close();
  EXPECT_THROW(load_calibration(path_), emts::precondition_error);
}

}  // namespace
}  // namespace emts::io
