#include "dsp/stft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::dsp {
namespace {

std::vector<double> tone_burst(double fs, std::size_t n, double freq, std::size_t on_from,
                               double amplitude) {
  std::vector<double> sig(n, 0.0);
  for (std::size_t i = on_from; i < n; ++i) {
    sig[i] = amplitude * std::sin(2.0 * units::pi * freq * static_cast<double>(i) / fs);
  }
  return sig;
}

TEST(Stft, FrameGeometry) {
  const auto sig = tone_burst(1e6, 8192, 1e4, 0, 1.0);
  StftOptions opt;
  opt.window_length = 1024;
  opt.hop = 256;
  const auto spec = stft(sig, 1e6, opt);
  EXPECT_EQ(spec.frames(), (8192 - 1024) / 256 + 1);
  EXPECT_EQ(spec.bins(), 513u);
  EXPECT_DOUBLE_EQ(spec.frame_time(0), 0.0);
  EXPECT_DOUBLE_EQ(spec.frame_time(4), 4.0 * 256.0 / 1e6);
  EXPECT_DOUBLE_EQ(spec.bin_frequency(512), 5e5);
}

TEST(Stft, SteadyToneHasConstantBandPower) {
  const double fs = 1e6;
  const auto sig = tone_burst(fs, 16384, 5e4, 0, 2.0);
  const auto spec = stft(sig, fs);
  const double first = spec.band_power(0, 4.5e4, 5.5e4);
  for (std::size_t f = 1; f < spec.frames(); ++f) {
    EXPECT_NEAR(spec.band_power(f, 4.5e4, 5.5e4), first, 0.15 * first) << "frame " << f;
  }
  EXPECT_GT(first, 0.1);
}

TEST(Stft, ToneAmplitudeRecovered) {
  const double fs = 1024.0 * 1000.0;
  // Bin-exact tone at 64 kHz with a 1024 window.
  const auto sig = tone_burst(fs, 8192, 64e3, 0, 3.0);
  const auto spec = stft(sig, fs);
  EXPECT_NEAR(spec.magnitude[2][spec.bin_of(64e3)], 3.0, 0.1);
}

TEST(Stft, BurstOnsetLocalizedInTime) {
  const double fs = 1e6;
  const std::size_t onset_sample = 20000;
  auto sig = tone_burst(fs, 65536, 1e5, onset_sample, 1.0);
  emts::Rng rng{4};
  for (double& v : sig) v += rng.gaussian(0.0, 0.02);

  const auto spec = stft(sig, fs);
  const std::size_t frame = find_band_activation(spec, 0.9e5, 1.1e5);
  ASSERT_LT(frame, spec.frames()) << "activation must be found";
  const double t = spec.frame_time(frame);
  const double expected = static_cast<double>(onset_sample) / fs;
  EXPECT_NEAR(t, expected, 2.0 * 1024.0 / fs);  // within two windows
}

TEST(Stft, NoActivationInPlainNoise) {
  emts::Rng rng{5};
  std::vector<double> sig(32768);
  for (double& v : sig) v = rng.gaussian();
  const auto spec = stft(sig, 1e6);
  EXPECT_EQ(find_band_activation(spec, 1e5, 1.2e5, 6.0), spec.frames());
}

TEST(Stft, RejectsBadOptions) {
  const std::vector<double> sig(2048, 0.0);
  StftOptions bad;
  bad.window_length = 1000;  // not a power of two
  EXPECT_THROW(stft(sig, 1e6, bad), emts::precondition_error);
  bad = StftOptions{};
  bad.hop = 0;
  EXPECT_THROW(stft(sig, 1e6, bad), emts::precondition_error);
  EXPECT_THROW(stft(std::vector<double>(16, 0.0), 1e6), emts::precondition_error);
}

TEST(Stft, BandPowerValidatesArguments) {
  const auto spec = stft(std::vector<double>(4096, 1.0), 1e6);
  EXPECT_THROW(spec.band_power(999, 0.0, 1.0), emts::precondition_error);
  EXPECT_THROW(spec.band_power(0, 2.0, 1.0), emts::precondition_error);
}

}  // namespace
}  // namespace emts::dsp
