#include "dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::dsp {
namespace {

TEST(DecimateMean, AveragesBlocks) {
  const std::vector<double> sig{1, 3, 5, 7, 9, 11};
  const auto out = decimate_mean(sig, 2);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
  EXPECT_DOUBLE_EQ(out[2], 10.0);
}

TEST(DecimateMean, DropsTrailingPartialBlock) {
  const std::vector<double> sig{1, 2, 3, 4, 5};
  EXPECT_EQ(decimate_mean(sig, 2).size(), 2u);
}

TEST(DecimateMean, FactorOneIsIdentity) {
  const std::vector<double> sig{1, -2, 3};
  const auto out = decimate_mean(sig, 1);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < sig.size(); ++i) EXPECT_DOUBLE_EQ(out[i], sig[i]);
}

TEST(DecimateMean, RejectsZeroFactor) {
  EXPECT_THROW(decimate_mean({1.0}, 0), emts::precondition_error);
}

TEST(DecimatePeak, KeepsLargestMagnitudeWithSign) {
  const std::vector<double> sig{0.1, -5.0, 0.2, 3.0, 0.0, 1.0};
  const auto out = decimate_peak(sig, 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -5.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(DecimatePeak, PreservesNarrowPulseThatMeanWouldDilute) {
  std::vector<double> sig(64, 0.0);
  sig[17] = 8.0;
  const auto peak = decimate_peak(sig, 16);
  const auto mean = decimate_mean(sig, 16);
  EXPECT_DOUBLE_EQ(peak[1], 8.0);
  EXPECT_DOUBLE_EQ(mean[1], 0.5);
}

TEST(Alignment, FindsKnownShift) {
  emts::Rng rng{12};
  std::vector<double> a(512);
  for (double& v : a) v = rng.gaussian();
  for (int true_lag : {-7, -1, 0, 3, 10}) {
    const auto b = shift(a, -true_lag);  // delay a by true_lag
    EXPECT_EQ(best_alignment_lag(a, b, 16), true_lag) << "lag " << true_lag;
  }
}

TEST(Alignment, ZeroLagForIdenticalSignals) {
  emts::Rng rng{13};
  std::vector<double> a(256);
  for (double& v : a) v = rng.gaussian();
  EXPECT_EQ(best_alignment_lag(a, a, 8), 0);
}

TEST(Alignment, RejectsMismatchedLengths) {
  EXPECT_THROW(best_alignment_lag(std::vector<double>(4, 0.0), std::vector<double>(5, 0.0), 2),
               emts::precondition_error);
}

TEST(Shift, PositiveLagPullsContentLeft) {
  const std::vector<double> sig{1, 2, 3, 4};
  const auto out = shift(sig, 1);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
}

TEST(Shift, NegativeLagPushesContentRight) {
  const std::vector<double> sig{1, 2, 3, 4};
  const auto out = shift(sig, -2);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  EXPECT_DOUBLE_EQ(out[3], 2.0);
}

TEST(Shift, RoundTripLosesOnlyEdges) {
  const std::vector<double> sig{1, 2, 3, 4, 5, 6};
  const auto out = shift(shift(sig, 2), -2);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[5], 6.0);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

}  // namespace
}  // namespace emts::dsp
