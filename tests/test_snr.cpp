#include "stats/snr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::stats {
namespace {

TEST(Snr, VoltageRatioOfKnownRms) {
  // Signal RMS 2, noise RMS 0.5 -> ratio 4, i.e. ~12.04 dB.
  const std::vector<double> signal{2, -2, 2, -2};
  const std::vector<double> noise{0.5, -0.5, 0.5, -0.5};
  EXPECT_DOUBLE_EQ(snr_voltage(signal, noise), 4.0);
  EXPECT_NEAR(snr_db(signal, noise), 20.0 * std::log10(4.0), 1e-12);
}

TEST(Snr, DbOfUnityRatioIsZero) {
  EXPECT_DOUBLE_EQ(snr_db_from_voltage_ratio(1.0), 0.0);
}

TEST(Snr, TwentyDbPerDecade) {
  EXPECT_NEAR(snr_db_from_voltage_ratio(10.0), 20.0, 1e-12);
  EXPECT_NEAR(snr_db_from_voltage_ratio(100.0), 40.0, 1e-12);
}

TEST(Snr, RejectsZeroNoise) {
  EXPECT_THROW(snr_voltage({1.0}, {0.0}), emts::precondition_error);
}

TEST(Snr, RejectsNonPositiveRatio) {
  EXPECT_THROW(snr_db_from_voltage_ratio(0.0), emts::precondition_error);
  EXPECT_THROW(snr_db_from_voltage_ratio(-3.0), emts::precondition_error);
}

TEST(Snr, GaussianNoiseRatioMatchesStddevRatio) {
  emts::Rng rng{10};
  const auto signal = rng.gaussian_vector(100000, 3.0);
  const auto noise = rng.gaussian_vector(100000, 0.3);
  EXPECT_NEAR(snr_voltage(signal, noise), 10.0, 0.2);
  EXPECT_NEAR(snr_db(signal, noise), 20.0, 0.2);
}

// The paper's measurement recipe: the "signal" capture contains signal plus
// noise, so very weak signals bottom out at 0 dB rather than going negative.
TEST(Snr, SignalPlusNoiseCaptureFloorsNearZeroDb) {
  emts::Rng rng{11};
  const auto noise = rng.gaussian_vector(50000, 1.0);
  auto capture = rng.gaussian_vector(50000, 1.0);  // no signal at all
  EXPECT_NEAR(snr_db(capture, noise), 0.0, 0.2);
}

}  // namespace
}  // namespace emts::stats
