#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::fleet {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

core::Trace golden_trace(emts::Rng& rng) {
  core::Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

core::Trace infected_trace(emts::Rng& rng) {
  core::Trace t = golden_trace(rng);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] += 0.6 * std::sin(2.0 * units::pi * 72e6 * static_cast<double>(i) / kFs) +
            0.3 * std::sin(2.0 * units::pi * 3e6 * static_cast<double>(i) / kFs);
  }
  return t;
}

core::TraceSet make_set(std::size_t n, bool infected, std::uint64_t seed) {
  emts::Rng rng{seed};
  core::TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) {
    set.add(infected ? infected_trace(rng) : golden_trace(rng));
  }
  return set;
}

// One shared calibration for the whole suite — the fleet deployment shape
// (calibrate once, monitor many) and much cheaper than refitting per test.
const core::TrustEvaluator& fitted() {
  static const core::TrustEvaluator evaluator =
      core::TrustEvaluator::calibrate(make_set(30, false, 1));
  return evaluator;
}

core::RuntimeMonitor::Options small_options() {
  core::RuntimeMonitor::Options opt;
  opt.alarm_debounce = 3;
  opt.spectral_window = 8;
  return opt;
}

// ---------- routing ----------

TEST(DeviceHash, MatchesKnownFnv1aVectors) {
  EXPECT_EQ(device_hash(""), 14695981039346656037ull);
  EXPECT_EQ(device_hash("a"), 0xaf63dc4c8601ec8cull);  // published FNV-1a("a")
  EXPECT_EQ(device_hash("chip-00"), device_hash("chip-00"));
  EXPECT_NE(device_hash("chip-00"), device_hash("chip-01"));
}

TEST(FleetMonitor, ShardRoutingIsHashModuloShards) {
  FleetOptions opt;
  opt.shards = 4;
  FleetMonitor fleet{opt};
  EXPECT_EQ(fleet.shard_count(), 4u);
  for (const char* id : {"chip-00", "chip-07", "sensor/ne", "x"}) {
    EXPECT_EQ(fleet.shard_of(id), device_hash(id) % 4u);
  }
}

TEST(FleetMonitor, DeviceRegistry) {
  FleetOptions opt;
  opt.shards = 2;
  FleetMonitor fleet{opt};
  fleet.add_device("chip-01", fitted());
  fleet.add_device("chip-00", fitted());
  EXPECT_TRUE(fleet.has_device("chip-00"));
  EXPECT_FALSE(fleet.has_device("chip-99"));
  EXPECT_EQ(fleet.device_count(), 2u);
  const std::vector<std::string> ids = fleet.device_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "chip-00");  // sorted, not insertion order
  EXPECT_EQ(ids[1], "chip-01");
}

TEST(BackpressureLabels, AreDistinct) {
  EXPECT_STREQ(backpressure_label(BackpressurePolicy::kBlock), "BLOCK");
  EXPECT_STREQ(backpressure_label(BackpressurePolicy::kDropOldest), "DROP_OLDEST");
  EXPECT_STREQ(backpressure_label(BackpressurePolicy::kReject), "REJECT");
}

// ---------- the acceptance criterion: fleet == standalone, bit for bit ----

TEST(FleetMonitor, PerDeviceResultsMatchStandaloneBitIdentically) {
  const core::RuntimeMonitor::Options mon = small_options();
  FleetOptions opt;
  opt.shards = 4;
  opt.queue_capacity = 8;
  opt.monitor = mon;
  FleetMonitor fleet{opt};

  const std::vector<std::string> ids = {"chip-00", "chip-01", "chip-02", "chip-03",
                                        "chip-04"};
  std::vector<core::RuntimeMonitor> standalone;
  standalone.reserve(ids.size());
  for (const std::string& id : ids) {
    fleet.add_device(id, core::TrustEvaluator{fitted()});
    standalone.emplace_back(kFs, core::TrustEvaluator{fitted()}, mon);
  }

  // Unique stream per device; the last device turns infected halfway.
  constexpr std::size_t kPerDevice = 24;
  std::vector<std::vector<core::Trace>> streams(ids.size());
  for (std::size_t d = 0; d < ids.size(); ++d) {
    emts::Rng rng{100 + d};
    for (std::size_t t = 0; t < kPerDevice; ++t) {
      const bool infected = d == ids.size() - 1 && t >= kPerDevice / 2;
      streams[d].push_back(infected ? infected_trace(rng) : golden_trace(rng));
    }
  }

  // Interleave submissions round-robin across devices — the fleet must
  // untangle them back into per-device order.
  for (std::size_t t = 0; t < kPerDevice; ++t) {
    for (std::size_t d = 0; d < ids.size(); ++d) {
      EXPECT_EQ(fleet.submit(ids[d], core::Trace{streams[d][t]}), SubmitResult::kAccepted);
    }
  }
  fleet.flush();

  for (std::size_t d = 0; d < ids.size(); ++d) {
    for (const core::Trace& trace : streams[d]) standalone[d].push(trace);
  }

  const FleetStats stats = fleet.stats();
  ASSERT_EQ(stats.sessions.size(), ids.size());
  EXPECT_EQ(stats.traces_submitted, kPerDevice * ids.size());
  EXPECT_EQ(stats.traces_processed, kPerDevice * ids.size());
  EXPECT_EQ(stats.devices, ids.size());
  EXPECT_EQ(stats.devices_alarm, 1u);
  EXPECT_EQ(stats.devices_monitoring, ids.size() - 1);

  for (std::size_t d = 0; d < ids.size(); ++d) {
    const SessionStats& session = stats.sessions[d];  // sorted == ids order here
    ASSERT_EQ(session.device_id, ids[d]);
    EXPECT_EQ(session.shard, fleet.shard_of(ids[d]));
    EXPECT_EQ(session.state, standalone[d].state());

    // Exact EQ on purpose: the fleet routes the same doubles through the
    // same monitor code on one thread per device, so scores must be
    // bit-identical, not approximately equal.
    ASSERT_EQ(session.last_score.has_value(), standalone[d].last_score().has_value());
    if (session.last_score.has_value()) {
      EXPECT_EQ(*session.last_score, *standalone[d].last_score());
    }

    const core::MonitorStats& expect = standalone[d].stats();
    EXPECT_EQ(session.monitor.traces_ingested, expect.traces_ingested);
    EXPECT_EQ(session.monitor.traces_rejected, expect.traces_rejected);
    EXPECT_EQ(session.monitor.scored_captures, expect.scored_captures);
    EXPECT_EQ(session.monitor.per_trace_anomalies, expect.per_trace_anomalies);
    EXPECT_EQ(session.monitor.spectral_passes, expect.spectral_passes);
    EXPECT_EQ(session.monitor.windowed_anomalies, expect.windowed_anomalies);
    EXPECT_EQ(session.monitor.alarms_latched, expect.alarms_latched);
  }

  // Event streams match too: same kinds, same trace indices, same payloads.
  std::vector<FleetEvent> fleet_events = fleet.drain_events();
  for (std::size_t d = 0; d < ids.size(); ++d) {
    std::vector<core::MonitorEvent> expect = standalone[d].drain_events();
    std::vector<core::MonitorEvent> got;
    for (const FleetEvent& event : fleet_events) {
      if (event.device_id == ids[d]) got.push_back(event.event);
    }
    ASSERT_EQ(got.size(), expect.size()) << ids[d];
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].kind, expect[i].kind);
      EXPECT_EQ(got[i].trace_index, expect[i].trace_index);
      EXPECT_EQ(got[i].value, expect[i].value);
    }
  }
}

// ---------- backpressure (deterministic via pause()) ----------

TEST(FleetMonitor, RejectPolicyRefusesWhenSaturated) {
  FleetOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 4;
  opt.backpressure = BackpressurePolicy::kReject;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("dev", core::TrustEvaluator{fitted()});

  emts::Rng rng{7};
  std::vector<core::Trace> traces;
  for (std::size_t i = 0; i < 7; ++i) traces.push_back(golden_trace(rng));

  fleet.pause();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.submit("dev", core::Trace{traces[i]}), SubmitResult::kAccepted);
  }
  for (std::size_t i = 4; i < 7; ++i) {
    EXPECT_EQ(fleet.submit("dev", core::Trace{traces[i]}), SubmitResult::kRejected);
  }

  const FleetStats saturated = fleet.stats();
  EXPECT_EQ(saturated.shards[0].queue_depth, 4u);
  EXPECT_EQ(saturated.shards[0].queue_high_water, 4u);
  EXPECT_EQ(saturated.shards[0].submitted, 4u);
  EXPECT_EQ(saturated.shards[0].rejected_full, 3u);
  EXPECT_EQ(saturated.backpressure_rejected, 3u);

  fleet.resume();
  fleet.flush();
  const FleetStats drained = fleet.stats();
  EXPECT_EQ(drained.traces_processed, 4u);
  EXPECT_EQ(drained.shards[0].queue_depth, 0u);
  EXPECT_EQ(drained.sessions[0].monitor.traces_ingested, 4u);
}

TEST(FleetMonitor, DropOldestPolicyEvictsButStaysBounded) {
  FleetOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 4;
  opt.backpressure = BackpressurePolicy::kDropOldest;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("dev", core::TrustEvaluator{fitted()});

  emts::Rng rng{8};
  fleet.pause();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.submit("dev", golden_trace(rng)), SubmitResult::kAccepted);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fleet.submit("dev", golden_trace(rng)), SubmitResult::kReplacedOldest);
  }

  const FleetStats saturated = fleet.stats();
  EXPECT_EQ(saturated.shards[0].queue_depth, 4u);  // bounded despite 7 submits
  EXPECT_EQ(saturated.shards[0].submitted, 7u);
  EXPECT_EQ(saturated.shards[0].dropped_oldest, 3u);
  EXPECT_EQ(saturated.backpressure_dropped, 3u);

  fleet.resume();
  fleet.flush();
  const FleetStats drained = fleet.stats();
  EXPECT_EQ(drained.traces_processed, 4u);  // only the survivors were scored
  EXPECT_EQ(drained.sessions[0].monitor.traces_ingested, 4u);
}

TEST(FleetMonitor, BlockPolicyAppliesFlowControl) {
  FleetOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 2;
  opt.backpressure = BackpressurePolicy::kBlock;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("dev", core::TrustEvaluator{fitted()});

  emts::Rng rng{9};
  fleet.pause();
  EXPECT_EQ(fleet.submit("dev", golden_trace(rng)), SubmitResult::kAccepted);
  EXPECT_EQ(fleet.submit("dev", golden_trace(rng)), SubmitResult::kAccepted);

  std::atomic<int> result{-1};
  std::thread producer([&] {
    result.store(static_cast<int>(fleet.submit("dev", golden_trace(rng))),
                 std::memory_order_release);
  });
  // The producer found the queue full and is parked; `blocked` flips exactly
  // when it commits to waiting.
  while (fleet.stats().shards[0].blocked == 0) std::this_thread::yield();
  EXPECT_EQ(result.load(std::memory_order_acquire), -1);

  fleet.resume();
  producer.join();
  EXPECT_EQ(result.load(), static_cast<int>(SubmitResult::kAccepted));

  fleet.flush();
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_processed, 3u);
  EXPECT_EQ(stats.shards[0].blocked, 1u);
  EXPECT_EQ(stats.backpressure_dropped, 0u);
  EXPECT_EQ(stats.backpressure_rejected, 0u);
}

TEST(FleetMonitor, SubmitBatchCountsRejections) {
  FleetOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 2;
  opt.backpressure = BackpressurePolicy::kReject;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("dev", core::TrustEvaluator{fitted()});

  fleet.pause();
  EXPECT_EQ(fleet.submit_batch("dev", make_set(5, false, 10)), 2u);
  fleet.resume();
  fleet.flush();
  EXPECT_EQ(fleet.stats().sessions[0].monitor.traces_ingested, 2u);
}

// ---------- fault injection ----------

TEST(FleetMonitor, MalformedCapturesAreRejectedAndDeviceTagged) {
  FleetOptions opt;
  opt.shards = 2;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("good", core::TrustEvaluator{fitted()});
  fleet.add_device("bad", core::TrustEvaluator{fitted()});

  emts::Rng rng{11};
  for (std::size_t i = 0; i < 4; ++i) fleet.submit("good", golden_trace(rng));

  fleet.submit("bad", golden_trace(rng));  // pins the stream shape
  core::Trace truncated(kLen / 2, 0.25);
  fleet.submit("bad", std::move(truncated));
  core::Trace poisoned = golden_trace(rng);
  poisoned[5] = std::numeric_limits<double>::quiet_NaN();
  fleet.submit("bad", std::move(poisoned));
  fleet.flush();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_rejected_invalid, 2u);
  ASSERT_EQ(stats.sessions.size(), 2u);
  const SessionStats& bad = stats.sessions[0];   // "bad" < "good"
  const SessionStats& good = stats.sessions[1];
  ASSERT_EQ(bad.device_id, "bad");
  EXPECT_EQ(bad.monitor.traces_ingested, 3u);
  EXPECT_EQ(bad.monitor.traces_rejected, 2u);
  EXPECT_EQ(bad.monitor.scored_captures, 1u);
  EXPECT_EQ(good.monitor.traces_rejected, 0u);
  EXPECT_EQ(good.monitor.scored_captures, 4u);

  bool saw_shape = false;
  bool saw_non_finite = false;
  for (const FleetEvent& event : fleet.drain_events()) {
    if (event.event.kind == core::MonitorEventKind::kTraceRejectedShape) {
      EXPECT_EQ(event.device_id, "bad");
      EXPECT_EQ(event.event.value, static_cast<double>(kLen / 2));
      saw_shape = true;
    }
    if (event.event.kind == core::MonitorEventKind::kTraceRejectedNonFinite) {
      EXPECT_EQ(event.device_id, "bad");
      EXPECT_EQ(event.event.value, 5.0);
      saw_non_finite = true;
    }
  }
  EXPECT_TRUE(saw_shape);
  EXPECT_TRUE(saw_non_finite);
}

// ---------- alarm lifecycle ----------

TEST(FleetMonitor, AcknowledgeAlarmRearmsOneDevice) {
  FleetOptions opt;
  opt.shards = 1;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("dev", core::TrustEvaluator{fitted()});

  emts::Rng rng{12};
  for (std::size_t i = 0; i < 8; ++i) fleet.submit("dev", infected_trace(rng));
  fleet.flush();
  EXPECT_EQ(fleet.device_state("dev"), core::MonitorState::kAlarm);
  EXPECT_EQ(fleet.stats().devices_alarm, 1u);

  fleet.acknowledge_alarm("dev");
  EXPECT_EQ(fleet.device_state("dev"), core::MonitorState::kMonitoring);
  EXPECT_EQ(fleet.stats().devices_alarm, 0u);
  EXPECT_THROW(fleet.acknowledge_alarm("dev"), emts::precondition_error);
}

// ---------- preconditions ----------

TEST(FleetMonitor, PreconditionsThrow) {
  {
    FleetOptions opt;
    opt.shards = 0;
    EXPECT_THROW(FleetMonitor{opt}, emts::precondition_error);
  }
  {
    FleetOptions opt;
    opt.queue_capacity = 0;
    EXPECT_THROW(FleetMonitor{opt}, emts::precondition_error);
  }

  FleetMonitor fleet{FleetOptions{}};
  EXPECT_THROW(fleet.add_device("", core::TrustEvaluator{fitted()}),
               emts::precondition_error);
  fleet.add_device("dev", core::TrustEvaluator{fitted()});
  EXPECT_THROW(fleet.add_device("dev", core::TrustEvaluator{fitted()}),
               emts::precondition_error);

  emts::Rng rng{13};
  EXPECT_THROW(fleet.submit("ghost", golden_trace(rng)), emts::precondition_error);
  EXPECT_THROW(fleet.submit("dev", core::Trace{}), emts::precondition_error);
  EXPECT_THROW(fleet.submit_batch("dev", core::TraceSet{}), emts::precondition_error);
  EXPECT_THROW(fleet.device_state("ghost"), emts::precondition_error);
  EXPECT_THROW(fleet.acknowledge_alarm("ghost"), emts::precondition_error);
}

// ---------- concurrency (the TSan target) ----------

TEST(FleetMonitor, ConcurrentProducersAndObserversAreSafe) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kDevicesPerProducer = 2;
  constexpr std::size_t kTracesPerDevice = 20;

  FleetOptions opt;
  opt.shards = 4;
  opt.queue_capacity = 4;  // small on purpose: exercise the kBlock wait path
  opt.backpressure = BackpressurePolicy::kBlock;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};

  std::vector<std::string> ids;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t d = 0; d < kDevicesPerProducer; ++d) {
      ids.push_back("chip-" + std::to_string(p) + "-" + std::to_string(d));
      fleet.add_device(ids.back(), core::TrustEvaluator{fitted()});
    }
  }

  std::atomic<bool> done{false};
  std::thread observer([&] {
    // Live observability must not perturb or race the hot path.
    std::vector<FleetEvent> sink;
    while (!done.load(std::memory_order_acquire)) {
      const FleetStats stats = fleet.stats();
      EXPECT_LE(stats.traces_processed, stats.traces_submitted);
      fleet.drain_events(sink);
      fleet.device_state(ids.front());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // One producer per device group keeps per-device submission ordered.
      emts::Rng rng{200 + p};
      for (std::size_t t = 0; t < kTracesPerDevice; ++t) {
        for (std::size_t d = 0; d < kDevicesPerProducer; ++d) {
          fleet.submit(ids[p * kDevicesPerProducer + d], golden_trace(rng));
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  fleet.flush();
  done.store(true, std::memory_order_release);
  observer.join();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_submitted, kProducers * kDevicesPerProducer * kTracesPerDevice);
  EXPECT_EQ(stats.traces_processed, stats.traces_submitted);
  ASSERT_EQ(stats.sessions.size(), ids.size());
  for (const SessionStats& session : stats.sessions) {
    EXPECT_EQ(session.monitor.traces_ingested, kTracesPerDevice);
    EXPECT_EQ(session.monitor.traces_rejected, 0u);
  }
  for (const ShardStats& shard : stats.shards) {
    EXPECT_EQ(shard.worker_faults, 0u);
    EXPECT_LE(shard.queue_high_water, opt.queue_capacity);
  }
}

// ---------- wire-frame ingest (the daemon entry point) ----------

TEST(FleetMonitor, SubmitFrameRoutesLikeSubmit) {
  FleetOptions opt;
  opt.shards = 2;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("chip-00", fitted());
  emts::Rng rng{40};

  io::wire::TraceFrame frame;
  frame.device_id = "chip-00";
  frame.sample_rate = kFs;
  frame.trace = golden_trace(rng);
  EXPECT_EQ(fleet.submit_frame(std::move(frame)), SubmitResult::kAccepted);
  fleet.flush();
  const FleetStats stats = fleet.stats();
  ASSERT_EQ(stats.sessions.size(), 1u);
  EXPECT_EQ(stats.sessions[0].monitor.scored_captures, 1u);
}

TEST(FleetMonitor, SubmitFrameRefusesUnknownDeviceAndRateMismatch) {
  FleetOptions opt;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("chip-00", fitted());
  emts::Rng rng{41};

  io::wire::TraceFrame ghost;
  ghost.device_id = "ghost";
  ghost.sample_rate = kFs;
  ghost.trace = golden_trace(rng);
  EXPECT_THROW(fleet.submit_frame(std::move(ghost)), emts::precondition_error);

  io::wire::TraceFrame wrong_rate;
  wrong_rate.device_id = "chip-00";
  wrong_rate.sample_rate = kFs * 2;
  wrong_rate.trace = golden_trace(rng);
  EXPECT_THROW(fleet.submit_frame(std::move(wrong_rate)), emts::precondition_error);

  // A refused frame must not have perturbed the session.
  fleet.flush();
  EXPECT_EQ(fleet.stats().traces_submitted, 0u);
}

// ---------- pause/resume/flush racing blocking producers (tsan target) ----

TEST(FleetMonitor, PauseResumeFlushRaceWithBlockingProducers) {
  // Control-plane operations (pause, resume, flush — the snapshot quiesce
  // machinery) race four kBlock producers hammering tiny queues. The
  // invariant: no trace is ever lost and the accounting stays exact, no
  // matter how the quiesce interleaves with blocked submitters.
  FleetOptions opt;
  opt.shards = 2;
  opt.queue_capacity = 4;  // small: producers block constantly
  opt.backpressure = BackpressurePolicy::kBlock;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 48;
  for (std::size_t p = 0; p < kProducers; ++p) {
    fleet.add_device("chip-" + std::to_string(p), fitted());
  }

  std::atomic<bool> stop_control{false};
  std::thread control{[&] {
    while (!stop_control.load()) {
      fleet.pause();
      std::this_thread::yield();
      fleet.resume();
      // flush() only after resume: a paused worker never drains, and the
      // barrier would deadlock against our own blocked producers.
      fleet.flush();
    }
  }};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&fleet, p] {
      emts::Rng rng{100 + p};
      const std::string id = "chip-" + std::to_string(p);
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        fleet.submit(id, golden_trace(rng));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop_control = true;
  control.join();
  fleet.flush();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.traces_processed, kProducers * kPerProducer);
  EXPECT_EQ(stats.backpressure_dropped, 0u);
  EXPECT_EQ(stats.backpressure_rejected, 0u);
  ASSERT_EQ(stats.sessions.size(), kProducers);
  for (const SessionStats& session : stats.sessions) {
    EXPECT_EQ(session.monitor.scored_captures, kPerProducer);
    EXPECT_EQ(session.monitor.traces_rejected, 0u);
  }
  std::uint64_t shard_processed = 0;
  for (const ShardStats& shard : stats.shards) shard_processed += shard.processed;
  EXPECT_EQ(shard_processed, kProducers * kPerProducer);
}

TEST(FleetMonitor, SnapshotRacesBlockingProducers) {
  // snapshot() = flush + pause + copy + resume while kBlock producers keep
  // submitting: every producer lands wholly before or after the cut, and the
  // fleet keeps running afterwards.
  FleetOptions opt;
  opt.shards = 2;
  opt.queue_capacity = 4;
  opt.backpressure = BackpressurePolicy::kBlock;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("chip-0", fitted());
  fleet.add_device("chip-1", fitted());

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&fleet, p] {
      emts::Rng rng{200 + p};
      const std::string id = "chip-" + std::to_string(p);
      for (std::size_t i = 0; i < 32; ++i) fleet.submit(id, golden_trace(rng));
    });
  }
  std::vector<io::FleetSnapshot> cuts;
  for (int s = 0; s < 3; ++s) cuts.push_back(fleet.snapshot());
  for (std::thread& t : producers) t.join();
  fleet.flush();

  for (const io::FleetSnapshot& cut : cuts) {
    ASSERT_EQ(cut.devices.size(), 2u);
    // Each snapshot is a consistent cut: whatever it saw had been fully
    // scored (ingested == scored, nothing half-processed).
    for (const io::FleetSnapshot::Device& device : cut.devices) {
      EXPECT_EQ(device.monitor.stats.traces_ingested,
                device.monitor.stats.scored_captures);
      EXPECT_LE(device.monitor.stats.scored_captures, 32u);
    }
  }
  EXPECT_EQ(fleet.stats().traces_processed, 64u);
}

TEST(FleetMonitor, FlushOnIdleFleetReturnsImmediately) {
  FleetMonitor fleet{FleetOptions{}};
  fleet.flush();
  fleet.pause();
  fleet.resume();
  fleet.flush();
  EXPECT_EQ(fleet.stats().traces_submitted, 0u);
}

// ---------- batched submission: bit-identical to per-trace ----------

// The exact-EQ guarantee extends to submit_batch under every backpressure
// policy: with capacity >= traffic no policy loses traces, and a batch's
// single contiguous ring reservation preserves order, so the batched fleet,
// the per-trace fleet, and a standalone monitor must all agree bit for bit.
TEST(FleetMonitor, SubmitBatchMatchesPerTraceSubmitExactly) {
  const core::RuntimeMonitor::Options mon = small_options();
  for (const BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kDropOldest,
        BackpressurePolicy::kReject}) {
    SCOPED_TRACE(backpressure_label(policy));
    FleetOptions opt;
    opt.shards = 2;
    opt.queue_capacity = 64;  // >= total traffic: every policy is lossless
    opt.backpressure = policy;
    opt.monitor = mon;
    FleetMonitor batched{opt};
    FleetMonitor per_trace{opt};

    const std::vector<std::string> ids = {"chip-00", "chip-01", "chip-02"};
    std::vector<core::RuntimeMonitor> standalone;
    standalone.reserve(ids.size());
    std::vector<core::TraceSet> streams;
    for (std::size_t d = 0; d < ids.size(); ++d) {
      batched.add_device(ids[d], core::TrustEvaluator{fitted()});
      per_trace.add_device(ids[d], core::TrustEvaluator{fitted()});
      standalone.emplace_back(kFs, core::TrustEvaluator{fitted()}, mon);
      // The last device turns infected so states/alarms diverge per device.
      streams.push_back(make_set(18, d == ids.size() - 1, 300 + d));
    }

    for (std::size_t d = 0; d < ids.size(); ++d) {
      EXPECT_EQ(batched.submit_batch(ids[d], streams[d]), streams[d].size());
      for (const core::Trace& trace : streams[d].traces) {
        EXPECT_NE(per_trace.submit(ids[d], core::Trace{trace}),
                  SubmitResult::kRejected);
        standalone[d].push(trace);
      }
    }
    batched.flush();
    per_trace.flush();

    const FleetStats batched_stats = batched.stats();
    const FleetStats per_trace_stats = per_trace.stats();
    ASSERT_EQ(batched_stats.sessions.size(), ids.size());
    EXPECT_EQ(batched_stats.traces_submitted, per_trace_stats.traces_submitted);
    EXPECT_EQ(batched_stats.traces_processed, per_trace_stats.traces_processed);
    EXPECT_EQ(batched_stats.devices_alarm, per_trace_stats.devices_alarm);

    for (std::size_t d = 0; d < ids.size(); ++d) {
      const SessionStats& a = batched_stats.sessions[d];
      const SessionStats& b = per_trace_stats.sessions[d];
      ASSERT_EQ(a.device_id, ids[d]);
      EXPECT_EQ(a.state, b.state);
      EXPECT_EQ(a.state, standalone[d].state());
      ASSERT_EQ(a.last_score.has_value(), standalone[d].last_score().has_value());
      if (a.last_score.has_value()) {
        // Exact EQ on purpose — same doubles, same code, same order.
        EXPECT_EQ(*a.last_score, *b.last_score);
        EXPECT_EQ(*a.last_score, *standalone[d].last_score());
      }
      EXPECT_EQ(a.monitor.traces_ingested, standalone[d].stats().traces_ingested);
      EXPECT_EQ(a.monitor.scored_captures, standalone[d].stats().scored_captures);
      EXPECT_EQ(a.monitor.per_trace_anomalies,
                standalone[d].stats().per_trace_anomalies);
      EXPECT_EQ(a.monitor.windowed_anomalies,
                standalone[d].stats().windowed_anomalies);
      EXPECT_EQ(a.monitor.alarms_latched, standalone[d].stats().alarms_latched);
    }

    // Event streams agree (kinds, indices, payloads) across all three paths.
    std::vector<FleetEvent> batched_events = batched.drain_events();
    std::vector<FleetEvent> per_trace_events = per_trace.drain_events();
    ASSERT_EQ(batched_events.size(), per_trace_events.size());
    for (std::size_t i = 0; i < batched_events.size(); ++i) {
      EXPECT_EQ(batched_events[i].device_id, per_trace_events[i].device_id);
      EXPECT_EQ(batched_events[i].event.kind, per_trace_events[i].event.kind);
      EXPECT_EQ(batched_events[i].event.trace_index,
                per_trace_events[i].event.trace_index);
      EXPECT_EQ(batched_events[i].event.value, per_trace_events[i].event.value);
    }
  }
}

TEST(FleetMonitor, SubmitBatchDropOldestEvictsExactlyLikePerTrace) {
  const core::RuntimeMonitor::Options mon = small_options();
  FleetOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 2;
  opt.backpressure = BackpressurePolicy::kDropOldest;
  opt.monitor = mon;
  FleetMonitor fleet{opt};
  fleet.add_device("dev", core::TrustEvaluator{fitted()});

  const core::TraceSet batch = make_set(5, false, 51);
  fleet.pause();
  // Bulk admission into a saturating queue: 2 fit, then each further trace
  // evicts the oldest — every trace is "accepted", three are evicted.
  EXPECT_EQ(fleet.submit_batch("dev", batch), 5u);
  const FleetStats saturated = fleet.stats();
  EXPECT_EQ(saturated.shards[0].submitted, 5u);
  EXPECT_EQ(saturated.shards[0].dropped_oldest, 3u);
  EXPECT_EQ(saturated.shards[0].queue_depth, 2u);
  fleet.resume();
  fleet.flush();

  // The survivors are the two newest traces, still in order — the same two
  // a per-trace submit loop would have kept. Standalone monitor fed only
  // those two must agree bit for bit.
  core::RuntimeMonitor standalone{kFs, core::TrustEvaluator{fitted()}, mon};
  standalone.push(batch.traces[3]);
  standalone.push(batch.traces[4]);

  const FleetStats drained = fleet.stats();
  EXPECT_EQ(drained.traces_processed, 2u);
  ASSERT_EQ(drained.sessions.size(), 1u);
  EXPECT_EQ(drained.sessions[0].monitor.scored_captures, 2u);
  ASSERT_TRUE(drained.sessions[0].last_score.has_value());
  EXPECT_EQ(*drained.sessions[0].last_score, *standalone.last_score());
}

// ---------- batched wire-frame draining (the daemon's read path) ----------

TEST(FleetMonitor, SubmitFramesVetsGroupsAndPreservesPerDeviceOrder) {
  const core::RuntimeMonitor::Options mon = small_options();
  FleetOptions opt;
  opt.shards = 2;
  opt.queue_capacity = 64;
  opt.monitor = mon;
  FleetMonitor fleet{opt};
  fleet.add_device("chip-00", core::TrustEvaluator{fitted()});
  fleet.add_device("chip-01", core::TrustEvaluator{fitted()});

  std::vector<core::RuntimeMonitor> standalone;
  standalone.emplace_back(kFs, core::TrustEvaluator{fitted()}, mon);
  standalone.emplace_back(kFs, core::TrustEvaluator{fitted()}, mon);

  // Interleave two devices' streams in one batch, with two bad frames mixed
  // in: an unknown device and a sample-rate mismatch. The bad ones must be
  // counted out without disturbing the good ones' ordering.
  std::vector<io::wire::TraceFrame> frames;
  emts::Rng rng{60};
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t d = i % 2;
    io::wire::TraceFrame frame;
    frame.device_id = "chip-0" + std::to_string(d);
    frame.sample_rate = kFs;
    frame.trace = golden_trace(rng);
    standalone[d].push(frame.trace);
    frames.push_back(std::move(frame));
    if (i == 4) {
      io::wire::TraceFrame ghost;
      ghost.device_id = "ghost";
      ghost.sample_rate = kFs;
      ghost.trace = golden_trace(rng);
      frames.push_back(std::move(ghost));
    }
    if (i == 7) {
      io::wire::TraceFrame wrong_rate;
      wrong_rate.device_id = "chip-00";
      wrong_rate.sample_rate = kFs * 2;
      wrong_rate.trace = golden_trace(rng);
      frames.push_back(std::move(wrong_rate));
    }
  }

  const FrameBatchOutcome outcome = fleet.submit_frames(std::move(frames));
  EXPECT_EQ(outcome.accepted, 10u);
  EXPECT_EQ(outcome.rejected_invalid, 2u);
  EXPECT_EQ(outcome.rejected_backpressure, 0u);
  fleet.flush();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_processed, 10u);
  ASSERT_EQ(stats.sessions.size(), 2u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(stats.sessions[d].monitor.scored_captures, 5u);
    ASSERT_TRUE(stats.sessions[d].last_score.has_value());
    // Exact EQ: per-device arrival order survived the per-shard grouping.
    EXPECT_EQ(*stats.sessions[d].last_score, *standalone[d].last_score());
  }
}

TEST(FleetMonitor, SubmitFramesCountsRejectBackpressure) {
  FleetOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 2;
  opt.backpressure = BackpressurePolicy::kReject;
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("dev", core::TrustEvaluator{fitted()});

  std::vector<io::wire::TraceFrame> frames;
  emts::Rng rng{61};
  for (std::size_t i = 0; i < 5; ++i) {
    io::wire::TraceFrame frame;
    frame.device_id = "dev";
    frame.sample_rate = kFs;
    frame.trace = golden_trace(rng);
    frames.push_back(std::move(frame));
  }

  fleet.pause();
  const FrameBatchOutcome outcome = fleet.submit_frames(std::move(frames));
  EXPECT_EQ(outcome.accepted, 2u);
  EXPECT_EQ(outcome.rejected_backpressure, 3u);
  EXPECT_EQ(outcome.rejected_invalid, 0u);
  fleet.resume();
  fleet.flush();
  EXPECT_EQ(fleet.stats().traces_processed, 2u);
}

// ---------- producers vs flush on the lock-free queue (tsan target) ----------

// Hammers the lock-free ring from four batch producers while the main thread
// runs the whole control plane (flush/pause/resume/stats/drain) against it.
// Under TSan this exercises the ring's acquire/release publication chain and
// the park/wake fences; the exact totals prove nothing was lost, duplicated,
// or scored out of order.
TEST(FleetMonitor, ProducersVsFlushStressOnLockFreeQueue) {
  const core::RuntimeMonitor::Options mon = small_options();
  FleetOptions opt;
  opt.shards = 2;
  opt.queue_capacity = 4;  // tiny on purpose: constant kBlock contention
  opt.backpressure = BackpressurePolicy::kBlock;
  opt.monitor = mon;
  FleetMonitor fleet{opt};

  static constexpr std::size_t kProducers = 4;
  static constexpr std::size_t kChunks = 6;
  static constexpr std::size_t kChunk = 8;
  for (std::size_t p = 0; p < kProducers; ++p) {
    fleet.add_device("chip-" + std::to_string(p), core::TrustEvaluator{fitted()});
  }

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&fleet, p] {
      const std::string id = "chip-" + std::to_string(p);
      for (std::size_t c = 0; c < kChunks; ++c) {
        const core::TraceSet chunk = make_set(kChunk, false, 700 + p * 100 + c);
        EXPECT_EQ(fleet.submit_batch(id, chunk), kChunk);
      }
    });
  }

  for (int round = 0; round < 10; ++round) {
    fleet.flush();
    fleet.pause();
    (void)fleet.stats();
    fleet.resume();
    std::vector<FleetEvent> events;
    fleet.drain_events(events);
  }
  for (std::thread& t : producers) t.join();
  fleet.flush();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_submitted, kProducers * kChunks * kChunk);
  EXPECT_EQ(stats.traces_processed, kProducers * kChunks * kChunk);
  EXPECT_EQ(stats.backpressure_dropped, 0u);
  EXPECT_EQ(stats.backpressure_rejected, 0u);
  for (const SessionStats& session : stats.sessions) {
    EXPECT_EQ(session.monitor.traces_ingested, kChunks * kChunk);
  }
  for (const ShardStats& shard : stats.shards) {
    EXPECT_EQ(shard.worker_faults, 0u);
    EXPECT_LE(shard.queue_high_water, opt.queue_capacity);
  }
}

// ---------- worker pinning ----------

TEST(FleetMonitor, PinnedWorkersProcessNormally) {
  FleetOptions opt;
  opt.shards = 2;
  opt.pin_workers = true;  // best-effort affinity; must never change results
  opt.monitor = small_options();
  FleetMonitor fleet{opt};
  fleet.add_device("chip-00", core::TrustEvaluator{fitted()});

  const core::TraceSet batch = make_set(6, false, 80);
  EXPECT_EQ(fleet.submit_batch("chip-00", batch), 6u);
  fleet.flush();
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_processed, 6u);
  ASSERT_EQ(stats.sessions.size(), 1u);
  EXPECT_EQ(stats.sessions[0].monitor.scored_captures, 6u);
}

}  // namespace
}  // namespace emts::fleet
