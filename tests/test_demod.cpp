#include "dsp/demod.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::dsp {
namespace {

// The attacker's end-to-end path for Trojan T1: OOK-modulate bits on the
// 750 kHz carrier, demodulate, slice, compare.
TEST(AmDemod, RecoversOokBitsCleanChannel) {
  const std::vector<int> bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  const double fs = 384e6 / 16.0;  // decimated rate keeps the test fast
  const double carrier = 750e3;
  const std::size_t samples_per_bit = 2048;
  const auto tx = ook_modulate(bits, carrier, fs, samples_per_bit);

  AmDemodOptions opt;
  opt.carrier_hz = carrier;
  opt.sample_rate = fs;
  const auto envelope = am_demodulate(tx, opt);
  const auto rx = slice_bits(envelope, fs, fs / static_cast<double>(samples_per_bit));
  ASSERT_EQ(rx.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(rx[i], bits[i]) << "bit " << i;
}

TEST(AmDemod, RecoversBitsThroughModerateNoise) {
  emts::Rng rng{404};
  const std::vector<int> bits{1, 1, 0, 1, 0, 0, 0, 1};
  const double fs = 24e6;
  const double carrier = 750e3;
  const std::size_t samples_per_bit = 4096;
  auto tx = ook_modulate(bits, carrier, fs, samples_per_bit);
  for (double& v : tx) v += rng.gaussian(0.0, 0.3);

  AmDemodOptions opt;
  opt.carrier_hz = carrier;
  opt.sample_rate = fs;
  const auto rx = slice_bits(am_demodulate(tx, opt), fs, fs / static_cast<double>(samples_per_bit));
  ASSERT_EQ(rx.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(rx[i], bits[i]) << "bit " << i;
}

TEST(AmDemod, EnvelopeTracksCarrierAmplitude) {
  const double fs = 10e6;
  const double carrier = 500e3;
  std::vector<double> tx(1 << 15);
  for (std::size_t i = 0; i < tx.size(); ++i) {
    tx[i] = 0.7 * std::sin(2.0 * 3.14159265358979 * carrier * static_cast<double>(i) / fs);
  }
  AmDemodOptions opt;
  opt.carrier_hz = carrier;
  opt.sample_rate = fs;
  const auto env = am_demodulate(tx, opt);
  // After settling, envelope ~ amplitude.
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = env.size() / 2; i < env.size(); ++i) {
    acc += env[i];
    ++n;
  }
  EXPECT_NEAR(acc / static_cast<double>(n), 0.7, 0.07);
}

TEST(AmDemod, RejectsSubNyquistSampleRate) {
  AmDemodOptions opt;
  opt.carrier_hz = 1e6;
  opt.sample_rate = 1.5e6;
  EXPECT_THROW(am_demodulate(std::vector<double>(64, 0.0), opt), emts::precondition_error);
}

TEST(OokModulate, SilentForZeroBits) {
  const auto tx = ook_modulate({0, 0, 0}, 1e6, 10e6, 100);
  for (double v : tx) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(OokModulate, OutputLengthIsBitsTimesSamples) {
  const auto tx = ook_modulate({1, 0, 1}, 1e6, 10e6, 128);
  EXPECT_EQ(tx.size(), 3u * 128u);
}

TEST(OokModulate, AmplitudeScales) {
  const auto tx = ook_modulate({1}, 1e6, 16e6, 64, 2.5);
  double peak = 0.0;
  for (double v : tx) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 2.5, 0.05);
}

TEST(SliceBits, RejectsBadRates) {
  EXPECT_THROW(slice_bits({1.0, 2.0}, 100.0, 0.0), emts::precondition_error);
  EXPECT_THROW(slice_bits({1.0, 2.0}, 100.0, 80.0), emts::precondition_error);
}

TEST(SliceBits, ThresholdsAgainstMidpoint) {
  // 4 samples/bit: low, low, high, high.
  const std::vector<double> env{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1};
  const auto bits = slice_bits(env, 16.0, 4.0);
  ASSERT_EQ(bits.size(), 4u);
  EXPECT_EQ(bits[0], 0);
  EXPECT_EQ(bits[1], 0);
  EXPECT_EQ(bits[2], 1);
  EXPECT_EQ(bits[3], 1);
}

}  // namespace
}  // namespace emts::dsp
