#include "layout/floorplan.hpp"

#include <gtest/gtest.h>

#include "layout/power_grid.hpp"
#include "util/assert.hpp"

namespace emts::layout {
namespace {

TEST(Geometry, RectBasics) {
  const Rect r{1.0, 2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.cx(), 2.5);
  EXPECT_DOUBLE_EQ(r.cy(), 4.0);
  EXPECT_TRUE(r.contains(2.0, 3.0));
  EXPECT_FALSE(r.contains(0.0, 3.0));
}

TEST(Geometry, RectOverlap) {
  const Rect a{0, 0, 2, 2};
  const Rect b{1, 1, 3, 3};
  const Rect c{2.1, 0, 3, 1};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Geometry, TouchingRectsDoNotOverlap) {
  const Rect a{0, 0, 1, 1};
  const Rect b{1, 0, 2, 1};
  EXPECT_FALSE(a.overlaps(b));
}

TEST(Geometry, Vec3Algebra) {
  const Vec3 a{1, 0, 0};
  const Vec3 b{0, 1, 0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.z, 1.0);
  EXPECT_DOUBLE_EQ((a + b).norm(), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ((a * 3.0).norm(), 3.0);
}

TEST(Geometry, SegmentLengthAndMidpoint) {
  const Segment s{Vec3{0, 0, 0}, Vec3{3, 4, 0}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_DOUBLE_EQ(s.midpoint().x, 1.5);
}

TEST(Floorplan, RejectsBadDieSpec) {
  DieSpec bad{};
  bad.core_width = 0.0;
  EXPECT_THROW(Floorplan{bad}, emts::precondition_error);
  DieSpec inverted{};
  inverted.sensor_z = inverted.cell_z / 2.0;
  EXPECT_THROW(Floorplan{inverted}, emts::precondition_error);
}

TEST(Floorplan, PlaceAndLookup) {
  Floorplan fp{DieSpec{}};
  fp.place("mod_a", Rect{0, 0, 1e-4, 1e-4}, 100.0);
  EXPECT_TRUE(fp.has_module("mod_a"));
  EXPECT_FALSE(fp.has_module("mod_b"));
  EXPECT_DOUBLE_EQ(fp.module("mod_a").area_um2, 100.0);
  EXPECT_THROW(fp.module("mod_b"), emts::precondition_error);
}

TEST(Floorplan, RejectsOverlapAndDuplicates) {
  Floorplan fp{DieSpec{}};
  fp.place("a", Rect{0, 0, 1e-4, 1e-4}, 1.0);
  EXPECT_THROW(fp.place("b", Rect{5e-5, 5e-5, 2e-4, 2e-4}, 1.0), emts::precondition_error);
  EXPECT_THROW(fp.place("a", Rect{5e-4, 5e-4, 6e-4, 6e-4}, 1.0), emts::precondition_error);
}

TEST(Floorplan, RejectsOutOfCoreRegions) {
  Floorplan fp{DieSpec{}};
  EXPECT_THROW(fp.place("a", Rect{-1e-5, 0, 1e-4, 1e-4}, 1.0), emts::precondition_error);
  EXPECT_THROW(fp.place("b", Rect{0, 0, 5e-3, 1e-4}, 1.0), emts::precondition_error);
}

TEST(ReferenceFloorplan, ContainsAllElevenModules) {
  const auto fp = reference_floorplan(DieSpec{});
  namespace mn = module_names;
  for (const char* name : {mn::kAesState, mn::kAesKeyRegs, mn::kAesSbox, mn::kAesMixColumns,
                           mn::kAesKeySchedule, mn::kAesControl, mn::kTrojan1, mn::kTrojan2,
                           mn::kTrojan3, mn::kTrojan4, mn::kTrojanA2}) {
    EXPECT_TRUE(fp.has_module(name)) << name;
  }
  EXPECT_EQ(fp.modules().size(), 11u);
}

TEST(ReferenceFloorplan, TrojansSitRightOfAes) {
  const auto fp = reference_floorplan(DieSpec{});
  namespace mn = module_names;
  const double aes_right = fp.module(mn::kAesSbox).region.x1;
  for (const char* t : {mn::kTrojan1, mn::kTrojan2, mn::kTrojan3, mn::kTrojan4, mn::kTrojanA2}) {
    EXPECT_GT(fp.module(t).region.x0, aes_right) << t;
  }
}

TEST(PadRing, PadsOnLeftEdgeAtGridHeight) {
  const DieSpec spec{};
  const auto pads = PadRing::for_die(spec);
  EXPECT_DOUBLE_EQ(pads.vdd.x, 0.0);
  EXPECT_DOUBLE_EQ(pads.vss.x, 0.0);
  EXPECT_DOUBLE_EQ(pads.vdd.z, spec.grid_z);
  EXPECT_GT(pads.vdd.y, pads.vss.y);
}

TEST(SupplyLoop, IsClosedAndSpansModule) {
  const DieSpec spec{};
  const auto fp = reference_floorplan(spec);
  const auto pads = PadRing::for_die(spec);
  for (const auto& m : fp.modules()) {
    const auto loop = supply_loop(spec, pads, m);
    EXPECT_LT(loop.closure_error(), 1e-12) << m.name;
    EXPECT_GE(loop.segments.size(), 6u);
    EXPECT_GT(loop.total_length(), m.region.height()) << m.name;
    EXPECT_EQ(loop.module_name, m.name);
  }
}

TEST(SupplyLoop, CrossingRunsAtCellLevelThroughModuleCenter) {
  const DieSpec spec{};
  const auto fp = reference_floorplan(spec);
  const auto pads = PadRing::for_die(spec);
  const auto& m = fp.module(module_names::kTrojan2);
  const auto loop = supply_loop(spec, pads, m);
  bool found_crossing = false;
  for (const Segment& s : loop.segments) {
    if (s.a.z == spec.cell_z && s.b.z == spec.cell_z) {
      found_crossing = true;
      EXPECT_NEAR(s.a.x, m.region.cx(), 1e-12);
      EXPECT_NEAR(std::abs(s.a.y - s.b.y), m.region.height(), 1e-12);
    }
  }
  EXPECT_TRUE(found_crossing);
}

TEST(SupplyLoops, OnePerModule) {
  const DieSpec spec{};
  const auto fp = reference_floorplan(spec);
  const auto loops = supply_loops(fp, PadRing::for_die(spec));
  EXPECT_EQ(loops.size(), fp.modules().size());
}

}  // namespace
}  // namespace emts::layout
