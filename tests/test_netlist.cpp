#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace emts::netlist {
namespace {

TEST(CellLibrary, EveryTypeHasConsistentInfo) {
  for (std::size_t i = 0; i < cell_type_count(); ++i) {
    const CellInfo& info = cell_info(cell_type_at(i));
    EXPECT_FALSE(info.name.empty());
    EXPECT_GT(info.area_um2, 0.0);
    EXPECT_GT(info.gate_equivalents, 0.0);
    EXPECT_GE(info.delay_ps, 0.0);
    EXPECT_GE(info.switch_charge_fc, 0.0);
  }
}

TEST(CellLibrary, Nand2IsTheGateEquivalentReference) {
  EXPECT_DOUBLE_EQ(cell_info(CellType::kNand2).gate_equivalents, 1.0);
}

TEST(CellLibrary, TruthTables) {
  EXPECT_TRUE(eval_cell(CellType::kInv, {false}));
  EXPECT_FALSE(eval_cell(CellType::kInv, {true}));
  EXPECT_TRUE(eval_cell(CellType::kBuf, {true}));
  EXPECT_TRUE(eval_cell(CellType::kNand2, {true, false}));
  EXPECT_FALSE(eval_cell(CellType::kNand2, {true, true}));
  EXPECT_TRUE(eval_cell(CellType::kNor2, {false, false}));
  EXPECT_FALSE(eval_cell(CellType::kNor2, {true, false}));
  EXPECT_TRUE(eval_cell(CellType::kAnd2, {true, true}));
  EXPECT_TRUE(eval_cell(CellType::kOr2, {false, true}));
  EXPECT_TRUE(eval_cell(CellType::kXor2, {true, false}));
  EXPECT_FALSE(eval_cell(CellType::kXor2, {true, true}));
  EXPECT_TRUE(eval_cell(CellType::kXnor2, {true, true}));
  EXPECT_FALSE(eval_cell(CellType::kXnor2, {true, false}));
  EXPECT_FALSE(eval_cell(CellType::kTieLo, {}));
  EXPECT_TRUE(eval_cell(CellType::kTieHi, {}));
}

TEST(CellLibrary, Mux2SelectsBInputWhenSelHigh) {
  // inputs {a, b, sel}
  EXPECT_FALSE(eval_cell(CellType::kMux2, {false, true, false}));
  EXPECT_TRUE(eval_cell(CellType::kMux2, {false, true, true}));
  EXPECT_TRUE(eval_cell(CellType::kMux2, {true, false, false}));
}

TEST(CellLibrary, EvalRejectsWrongArity) {
  EXPECT_THROW(eval_cell(CellType::kInv, {true, false}), emts::precondition_error);
  EXPECT_THROW(eval_cell(CellType::kNand2, {true}), emts::precondition_error);
}

TEST(Netlist, AddNetAssignsSequentialIdsAndDefaultNames) {
  Netlist nl;
  const NetId a = nl.add_net();
  const NetId b = nl.add_net("clk");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(nl.net_name(0), "n0");
  EXPECT_EQ(nl.net_name(1), "clk");
}

TEST(Netlist, AddCellWiresDriverAndFanout) {
  Netlist nl;
  const NetId in = nl.add_net("in");
  const NetId out = nl.add_net("out");
  const CellId inv = nl.add_cell(CellType::kInv, {in}, out);
  EXPECT_TRUE(nl.has_driver(out));
  EXPECT_EQ(nl.driver(out), inv);
  EXPECT_FALSE(nl.has_driver(in));
  ASSERT_EQ(nl.fanout(in).size(), 1u);
  EXPECT_EQ(nl.fanout(in)[0].first, inv);
}

TEST(Netlist, RejectsDoubleDriver) {
  Netlist nl;
  const NetId in = nl.add_net();
  const NetId out = nl.add_net();
  nl.add_cell(CellType::kInv, {in}, out);
  EXPECT_THROW(nl.add_cell(CellType::kBuf, {in}, out), emts::precondition_error);
}

TEST(Netlist, RejectsUnknownNets) {
  Netlist nl;
  const NetId in = nl.add_net();
  EXPECT_THROW(nl.add_cell(CellType::kInv, {in}, 99), emts::precondition_error);
  EXPECT_THROW(nl.add_cell(CellType::kInv, {99}, in), emts::precondition_error);
}

TEST(Netlist, RejectsWrongInputCount) {
  Netlist nl;
  const NetId a = nl.add_net();
  const NetId out = nl.add_net();
  EXPECT_THROW(nl.add_cell(CellType::kNand2, {a}, out), emts::precondition_error);
}

TEST(Netlist, PrimaryInputMustBeUndriven) {
  Netlist nl;
  const NetId in = nl.add_net();
  const NetId out = nl.add_net();
  nl.add_cell(CellType::kInv, {in}, out);
  nl.mark_primary_input(in);
  EXPECT_THROW(nl.mark_primary_input(out), emts::precondition_error);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
}

TEST(Netlist, FlopsTrackedInInsertionOrder) {
  Netlist nl;
  const NetId d0 = nl.add_net();
  const NetId q0 = nl.add_net();
  const NetId q1 = nl.add_net();
  const CellId f0 = nl.add_cell(CellType::kDff, {d0}, q0);
  const CellId f1 = nl.add_cell(CellType::kDff, {q0}, q1);
  ASSERT_EQ(nl.flops().size(), 2u);
  EXPECT_EQ(nl.flops()[0], f0);
  EXPECT_EQ(nl.flops()[1], f1);
}

TEST(Netlist, GateCountAggregates) {
  Netlist nl;
  const NetId a = nl.add_net();
  const NetId b = nl.add_net();
  const NetId x = nl.add_net();
  const NetId y = nl.add_net();
  nl.add_cell(CellType::kNand2, {a, b}, x);
  nl.add_cell(CellType::kDff, {x}, y);
  const auto report = nl.gate_count();
  EXPECT_EQ(report.cell_count, 2u);
  EXPECT_DOUBLE_EQ(report.gate_equivalents, 1.0 + 6.0);
  EXPECT_DOUBLE_EQ(report.area_um2, 12.0 + 72.0);
  EXPECT_EQ(report.count_by_type[static_cast<std::size_t>(CellType::kNand2)], 1u);
  EXPECT_EQ(report.count_by_type[static_cast<std::size_t>(CellType::kDff)], 1u);
}

TEST(Netlist, MergeAppendsWithOffsetAndPrefixedNames) {
  Netlist a{"a"};
  const NetId ain = a.add_net("x");
  const NetId aout = a.add_net("y");
  a.add_cell(CellType::kInv, {ain}, aout);

  Netlist b{"b"};
  const NetId bin = b.add_net("p");
  const NetId bout = b.add_net("q");
  b.add_cell(CellType::kBuf, {bin}, bout);
  b.mark_primary_input(bin);

  const NetId offset = a.merge(b);
  EXPECT_EQ(offset, 2u);
  EXPECT_EQ(a.net_count(), 4u);
  EXPECT_EQ(a.cell_count(), 2u);
  EXPECT_EQ(a.net_name(2), "b/p");
  EXPECT_TRUE(a.has_driver(bout + offset));
  ASSERT_EQ(a.primary_inputs().size(), 1u);
  EXPECT_EQ(a.primary_inputs()[0], bin + offset);
}

}  // namespace
}  // namespace emts::netlist
