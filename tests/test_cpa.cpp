#include "attack/cpa.hpp"

#include <gtest/gtest.h>

#include "sim/chip.hpp"
#include "util/assert.hpp"

namespace emts::attack {
namespace {

TEST(InvShift, MatchesShiftRowsGeometry) {
  // Row 0 is not shifted; row r of column c comes from column (c + r) % 4.
  EXPECT_EQ(inv_shift_position(0), 0u);    // r0 c0
  EXPECT_EQ(inv_shift_position(4), 4u);    // r0 c1
  EXPECT_EQ(inv_shift_position(1), 5u);    // r1 c0 <- c1
  EXPECT_EQ(inv_shift_position(13), 1u);   // r1 c3 <- c0
  EXPECT_EQ(inv_shift_position(2), 10u);   // r2 c0 <- c2
  EXPECT_EQ(inv_shift_position(3), 15u);   // r3 c0 <- c3
}

TEST(InvShift, IsAPermutation) {
  std::array<int, 16> seen{};
  for (std::size_t j = 0; j < 16; ++j) ++seen[inv_shift_position(j)];
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(InvShift, ConsistentWithCipherTrace) {
  // For a real encryption, state10[j] ^ k10[j] must equal
  // sbox(state9[inv_shift_position(j)]).
  const aes::Key key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  aes::Block pt{};
  for (std::size_t i = 0; i < 16; ++i) pt[i] = static_cast<std::uint8_t>(3 * i + 1);
  const auto trace = aes::encrypt_traced(key, pt);
  for (std::size_t j = 0; j < 16; ++j) {
    const std::uint8_t expected = aes::sbox(trace.state[9][inv_shift_position(j)]);
    EXPECT_EQ(static_cast<std::uint8_t>(trace.state[10][j] ^ trace.round_key[10][j]), expected)
        << "byte " << j;
  }
}

TEST(KeySchedule, InvertRecoversMasterKey) {
  const aes::Key key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const auto round_keys = aes::expand_key(key);
  EXPECT_EQ(aes::invert_key_schedule(round_keys[10]), key);
}

TEST(KeySchedule, InvertRoundTripsRandomKeys) {
  emts::Rng rng{42};
  for (int trial = 0; trial < 20; ++trial) {
    aes::Key key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u32());
    const auto k10 = aes::expand_key(key)[10];
    EXPECT_EQ(aes::invert_key_schedule(k10), key);
  }
}

TEST(SliceEncryptions, CutsWindowsCorrectly) {
  core::TraceSet windows;
  windows.sample_rate = 1e6;
  core::Trace w(20);
  for (std::size_t i = 0; i < 20; ++i) w[i] = static_cast<double>(i);
  windows.add(w);
  aes::Block ct_a{};
  ct_a[0] = 0xaa;
  aes::Block ct_b{};
  ct_b[0] = 0xbb;
  const auto segments = slice_encryptions(windows, {{ct_a, ct_b}}, 8);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_DOUBLE_EQ(segments[0].samples[0], 0.0);
  EXPECT_DOUBLE_EQ(segments[1].samples[0], 8.0);
  EXPECT_EQ(segments[0].ciphertext[0], 0xaa);
  EXPECT_EQ(segments[1].ciphertext[0], 0xbb);
}

TEST(SliceEncryptions, RejectsShortWindows) {
  core::TraceSet windows;
  windows.sample_rate = 1e6;
  windows.add(core::Trace(10, 0.0));
  EXPECT_THROW(slice_encryptions(windows, {{aes::Block{}, aes::Block{}}}, 8),
               emts::precondition_error);
  EXPECT_THROW(slice_encryptions(windows, {{}, {}}, 8), emts::precondition_error);
}

TEST(Cpa, RejectsDegenerateInputs) {
  std::vector<EncryptionTrace> few(4);
  EXPECT_THROW(last_round_cpa(few), emts::precondition_error);
  std::vector<EncryptionTrace> short_traces(8);
  for (auto& t : short_traces) t.samples.assign(16, 0.0);
  EXPECT_THROW(last_round_cpa(short_traces), emts::precondition_error);
}

// The headline: key recovery from the simulated on-chip sensor traces.
TEST(Cpa, RecoversKeyFromSensorTraces) {
  sim::ChipConfig config = sim::make_default_config();
  config.fixed_challenge_workload = false;  // the attacker needs varied data
  sim::Chip chip{config};
  const auto k10 = aes::expand_key(config.key)[10];

  constexpr std::size_t kWindows = 40;
  core::TraceSet captures;
  captures.sample_rate = chip.sample_rate();
  std::vector<std::vector<aes::Block>> ciphertexts;
  for (std::uint64_t w = 0; w < kWindows; ++w) {
    captures.add(chip.capture(true, w).onchip_v);
    std::vector<aes::Block> cts;
    for (const auto& pt : chip.window_plaintexts(w)) {
      cts.push_back(aes::encrypt(config.key, pt));
    }
    ciphertexts.push_back(std::move(cts));
  }

  const std::size_t samples_per_encryption =
      aes::kCyclesPerEncryption * config.clock.samples_per_cycle;
  const auto segments = slice_encryptions(captures, ciphertexts, samples_per_encryption);
  const auto result = last_round_cpa(segments);

  EXPECT_GE(result.correct_bytes(k10), 14u) << "CPA should recover (nearly) all key bytes";
  // And with a correct round-10 key, the master key falls out.
  if (result.correct_bytes(k10) == 16u) {
    EXPECT_EQ(result.master_key, config.key);
  }
}

TEST(Cpa, CorrectGuessOutranksWrongGuesses) {
  sim::ChipConfig config = sim::make_default_config();
  config.fixed_challenge_workload = false;
  sim::Chip chip{config};
  const auto k10 = aes::expand_key(config.key)[10];

  core::TraceSet captures;
  captures.sample_rate = chip.sample_rate();
  std::vector<std::vector<aes::Block>> ciphertexts;
  for (std::uint64_t w = 0; w < 25; ++w) {
    captures.add(chip.capture(true, 500 + w).onchip_v);
    std::vector<aes::Block> cts;
    for (const auto& pt : chip.window_plaintexts(500 + w)) {
      cts.push_back(aes::encrypt(config.key, pt));
    }
    ciphertexts.push_back(std::move(cts));
  }
  const auto segments = slice_encryptions(
      captures, ciphertexts, aes::kCyclesPerEncryption * config.clock.samples_per_cycle);
  const auto result = last_round_cpa(segments);
  // Even where the top guess is wrong, the truth must rank near the top.
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_LT(result.bytes[j].rank_of(k10[j]), 8u) << "byte " << j;
  }
}

}  // namespace
}  // namespace emts::attack
