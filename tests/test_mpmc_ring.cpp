// BoundedMpmcRing: the lock-free bounded FIFO under the fleet's shard
// queues. These suites pin the properties the fleet relies on — FIFO order,
// bulk partial accept/return, arbitrary (non-power-of-two) logical capacity,
// wraparound reuse, and multi-producer/multi-consumer safety with
// per-producer order preserved (the per-device ordering guarantee).
#include "util/mpmc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace {

using emts::util::BoundedMpmcRing;

TEST(BoundedMpmcRing, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedMpmcRing<int>{0}, emts::precondition_error);
}

TEST(BoundedMpmcRing, SingleThreadedFifoAndOccupancy) {
  BoundedMpmcRing<int> ring{4};
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());

  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(ring.try_enqueue(int{v}), 1u);
  }
  EXPECT_EQ(ring.size(), 4u);

  int overflow = 99;
  EXPECT_EQ(ring.try_enqueue(&overflow, 1), 0u);  // full

  int out = -1;
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(ring.try_dequeue(&out, 1), 1u);
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.try_dequeue(&out, 1), 0u);  // empty
}

TEST(BoundedMpmcRing, NonPowerOfTwoCapacityIsHonoredExactly) {
  // Physical storage rounds up to a power of two; the logical capacity must
  // still cap occupancy at exactly the requested value.
  BoundedMpmcRing<int> ring{3};
  int items[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_enqueue(items, 5), 3u);  // partial accept: 3 fit
  EXPECT_EQ(ring.size(), 3u);

  int out[5] = {};
  EXPECT_EQ(ring.try_dequeue(out, 5), 3u);  // partial drain: only 3 present
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
}

TEST(BoundedMpmcRing, BulkRoundTripPreservesOrderAcrossWraparound) {
  BoundedMpmcRing<std::uint64_t> ring{8};
  std::uint64_t next = 0;
  std::uint64_t expect = 0;
  std::uint64_t scratch[5];
  // Staggered bulk enqueues/dequeues force the indices to wrap the physical
  // array many times; FIFO order must hold throughout.
  for (int round = 0; round < 1000; ++round) {
    std::uint64_t in[3];
    for (auto& v : in) v = next++;
    ASSERT_EQ(ring.try_enqueue(in, 3), 3u);
    const std::size_t got = ring.try_dequeue(scratch, (round % 2) ? 3 : 2);
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_EQ(scratch[i], expect++);
    }
    while (ring.size() > 5) {
      ASSERT_EQ(ring.try_dequeue(scratch, 1), 1u);
      ASSERT_EQ(scratch[0], expect++);
    }
  }
}

TEST(BoundedMpmcRing, MoveOnlyPayloadsMoveThrough) {
  BoundedMpmcRing<std::unique_ptr<int>> ring{2};
  auto p = std::make_unique<int>(42);
  EXPECT_EQ(ring.try_enqueue(std::move(p)), 1u);
  std::unique_ptr<int> out;
  EXPECT_EQ(ring.try_dequeue(&out, 1), 1u);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// Multi-producer / single-consumer: per-producer order must survive (this is
// what keeps one device's captures in submission order through a shard).
TEST(BoundedMpmcRing, PerProducerOrderSurvivesContention) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 1500;
  BoundedMpmcRing<std::uint64_t> ring{16};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      std::uint64_t batch[8];
      std::uint64_t sent = 0;
      while (sent < kPerProducer) {
        std::size_t n = 0;
        while (n < 8 && sent + n < kPerProducer) {
          // Tag each value with its producer: high bits = producer id.
          batch[n] = (static_cast<std::uint64_t>(p) << 32) | (sent + n);
          ++n;
        }
        std::size_t placed = 0;
        while (placed < n) {
          const std::size_t took = ring.try_enqueue(batch + placed, n - placed);
          placed += took;
          // Full ring: let the consumer run (essential on few-core hosts).
          if (took == 0) std::this_thread::yield();
        }
        sent += n;
      }
    });
  }

  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::vector<std::uint64_t> count(kProducers, 0);
  std::uint64_t total = 0;
  std::uint64_t out[8];
  while (total < kProducers * kPerProducer) {
    const std::size_t got = ring.try_dequeue(out, 8);
    if (got == 0) std::this_thread::yield();
    for (std::size_t i = 0; i < got; ++i) {
      const std::size_t p = static_cast<std::size_t>(out[i] >> 32);
      const std::uint64_t seq = out[i] & 0xffffffffu;
      ASSERT_LT(p, kProducers);
      if (count[p] > 0) {
        ASSERT_GT(seq, last_seen[p]) << "producer " << p << " reordered";
      }
      last_seen[p] = seq;
      ++count[p];
    }
    total += got;
  }
  for (auto& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(count[p], kPerProducer);
  }
  EXPECT_TRUE(ring.empty());
}

// Multi-producer / multi-consumer: nothing lost, nothing duplicated. This is
// the kDropOldest shape — producers evicting (acting as consumers) while the
// worker drains.
TEST(BoundedMpmcRing, MpmcLosesAndDuplicatesNothing) {
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 4000;
  BoundedMpmcRing<std::uint64_t> ring{8};

  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> checksum{0};
  std::uint64_t expected_sum = 0;

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::uint64_t s = 0; s < kPerProducer; ++s) {
      expected_sum += (static_cast<std::uint64_t>(p) << 32) | s;
    }
    threads.emplace_back([&ring, p] {
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | s;
        while (ring.try_enqueue(&v, 1) == 0) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t out[4];
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        const std::size_t got = ring.try_dequeue(out, 4);
        if (got == 0) {
          std::this_thread::yield();
          continue;
        }
        std::uint64_t local = 0;
        for (std::size_t i = 0; i < got; ++i) local += out[i];
        checksum.fetch_add(local, std::memory_order_relaxed);
        consumed.fetch_add(got, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(checksum.load(), expected_sum);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
