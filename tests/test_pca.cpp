#include "stats/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::stats {
namespace {

using linalg::Matrix;

// Data along a known 2D direction with small orthogonal jitter.
Matrix line_data(std::size_t n, double jitter, std::uint64_t seed) {
  emts::Rng rng{seed};
  Matrix data{n, 2};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.gaussian(0.0, 3.0);
    const double j = rng.gaussian(0.0, jitter);
    // Direction (1, 2)/sqrt(5), orthogonal (-2, 1)/sqrt(5).
    data(i, 0) = t * (1.0 / std::sqrt(5.0)) + j * (-2.0 / std::sqrt(5.0));
    data(i, 1) = t * (2.0 / std::sqrt(5.0)) + j * (1.0 / std::sqrt(5.0));
  }
  return data;
}

TEST(Pca, FirstComponentAlignsWithDominantDirection) {
  const auto data = line_data(500, 0.05, 42);
  const auto model = PcaModel::fit(data, 1);
  ASSERT_EQ(model.components(), 1u);
  // Project the direction itself: the loading vector should be (1,2)/sqrt(5)
  // up to sign. Check by projecting two points along the line.
  const auto p1 = model.project({1.0 / std::sqrt(5.0), 2.0 / std::sqrt(5.0)});
  const auto p0 = model.project({0.0, 0.0});
  EXPECT_NEAR(std::abs(p1[0] - p0[0]), 1.0, 1e-3);
}

TEST(Pca, ExplainedVarianceRatioNearOneForLineData) {
  const auto data = line_data(500, 0.01, 7);
  const auto model = PcaModel::fit(data, 1);
  EXPECT_GT(model.explained_variance_ratio(), 0.99);
}

TEST(Pca, ComponentsClampToRank) {
  const auto data = line_data(10, 0.1, 3);
  const auto model = PcaModel::fit(data, 50);
  EXPECT_LE(model.components(), 2u);
}

TEST(Pca, MeanIsCaptured) {
  Matrix data{4, 2};
  for (std::size_t i = 0; i < 4; ++i) {
    data(i, 0) = 10.0 + static_cast<double>(i);
    data(i, 1) = -5.0;
  }
  const auto model = PcaModel::fit(data, 1);
  EXPECT_NEAR(model.feature_mean()[0], 11.5, 1e-12);
  EXPECT_NEAR(model.feature_mean()[1], -5.0, 1e-12);
}

TEST(Pca, ProjectionOfMeanIsZero) {
  const auto data = line_data(100, 0.2, 9);
  const auto model = PcaModel::fit(data, 2);
  const auto proj = model.project(model.feature_mean());
  for (double v : proj) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Pca, ReconstructionErrorSmallWithFullRank) {
  const auto data = line_data(50, 0.5, 11);
  const auto model = PcaModel::fit(data, 2);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const std::vector<double> x{data(i, 0), data(i, 1)};
    const auto back = model.reconstruct(model.project(x));
    EXPECT_NEAR(back[0], x[0], 1e-8);
    EXPECT_NEAR(back[1], x[1], 1e-8);
  }
}

TEST(Pca, GramPathMatchesCovariancePathOnProjections) {
  // samples < features triggers the Gram path; embed 2-D line data in 8-D.
  emts::Rng rng{13};
  const std::size_t n = 6;
  const std::size_t d = 8;
  Matrix wide{n, d};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.gaussian();
    for (std::size_t j = 0; j < d; ++j) {
      wide(i, j) = t * static_cast<double>(j + 1) * 0.25;
    }
  }
  const auto model = PcaModel::fit(wide, 3);  // Gram path (6 < 8)
  // Rank is 1, so only one meaningful component should survive.
  ASSERT_GE(model.components(), 1u);
  EXPECT_GT(model.explained_variance()[0], 0.0);
  // Projection must preserve pairwise distances along the line (isometry on
  // the data subspace).
  std::vector<double> row0(d);
  std::vector<double> row1(d);
  for (std::size_t j = 0; j < d; ++j) {
    row0[j] = wide(0, j);
    row1[j] = wide(1, j);
  }
  const double orig = linalg::euclidean_distance(row0, row1);
  const double proj = linalg::euclidean_distance(model.project(row0), model.project(row1));
  EXPECT_NEAR(proj, orig, 1e-6 * std::max(1.0, orig));
}

TEST(Pca, ProjectAllMatchesRowwiseProject) {
  const auto data = line_data(20, 0.3, 17);
  const auto model = PcaModel::fit(data, 2);
  const auto all = model.project_all(data);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto one = model.project({data(i, 0), data(i, 1)});
    for (std::size_t c = 0; c < model.components(); ++c) {
      EXPECT_NEAR(all(i, c), one[c], 1e-12);
    }
  }
}

TEST(Pca, EigenvaluesDescending) {
  emts::Rng rng{23};
  Matrix data{200, 5};
  for (std::size_t i = 0; i < 200; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      data(i, j) = rng.gaussian(0.0, static_cast<double>(5 - j));
  const auto model = PcaModel::fit(data, 5);
  const auto& ev = model.explained_variance();
  for (std::size_t c = 1; c < ev.size(); ++c) EXPECT_GE(ev[c - 1], ev[c] - 1e-9);
}

TEST(Pca, RejectsDegenerateInputs) {
  EXPECT_THROW(PcaModel::fit(Matrix{1, 3}, 1), emts::precondition_error);
  EXPECT_THROW(PcaModel::fit(Matrix{3, 3}, 0), emts::precondition_error);
}

TEST(Pca, ProjectRejectsWrongDimension) {
  const auto model = PcaModel::fit(line_data(10, 0.1, 1), 1);
  EXPECT_THROW(model.project({1.0, 2.0, 3.0}), emts::precondition_error);
}

class PcaVarianceSweep : public ::testing::TestWithParam<std::size_t> {};

// Property: keeping more components never decreases explained variance.
TEST_P(PcaVarianceSweep, ExplainedVarianceMonotoneInComponents) {
  emts::Rng rng{GetParam()};
  Matrix data{100, 6};
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      data(i, j) = rng.gaussian(0.0, 1.0 + static_cast<double>(j));
  double prev = 0.0;
  for (std::size_t k = 1; k <= 6; ++k) {
    const auto model = PcaModel::fit(data, k);
    const double ratio = model.explained_variance_ratio();
    EXPECT_GE(ratio, prev - 1e-9);
    prev = ratio;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcaVarianceSweep, ::testing::Values<std::size_t>(1, 2, 3, 4));

}  // namespace
}  // namespace emts::stats
