#include "aes/datapath_netlist.hpp"

#include <gtest/gtest.h>

#include "aes/aes128.hpp"
#include "util/assert.hpp"
#include "netlist/simulator.hpp"
#include "util/rng.hpp"

namespace emts::aes {
namespace {

using netlist::NetId;
using netlist::Netlist;
using netlist::Simulator;

std::vector<NetId> make_bus(Netlist& nl, std::size_t n, const char* prefix) {
  std::vector<NetId> bus;
  for (std::size_t i = 0; i < n; ++i) bus.push_back(nl.add_net(prefix + std::to_string(i)));
  return bus;
}

TEST(SboxNetlist, MatchesReferenceForAll256Inputs) {
  Netlist nl{"sbox"};
  const auto in = make_bus(nl, 8, "x");
  const auto out = build_sbox_netlist(nl, in);
  ASSERT_EQ(out.size(), 8u);

  Simulator sim{nl};
  for (int x = 0; x < 256; ++x) {
    sim.set_word(in, static_cast<std::uint64_t>(x));
    sim.settle();
    ASSERT_EQ(sim.read_word(out), sbox(static_cast<std::uint8_t>(x))) << "input " << x;
  }
}

TEST(SboxNetlist, SizeIsInTheLutSynthesisRange) {
  // The gate model budgets ~1,290 cells per LUT-style S-box; the synthesized
  // netlist with sharing should land in the same order of magnitude.
  Netlist nl{"sbox"};
  const auto in = make_bus(nl, 8, "x");
  build_sbox_netlist(nl, in);
  const auto report = nl.gate_count();
  EXPECT_GT(report.cell_count, 150u);
  EXPECT_LT(report.cell_count, 2500u);
}

TEST(SboxNetlist, TwoInstancesAreIndependent) {
  Netlist nl{"pair"};
  const auto in_a = make_bus(nl, 8, "a");
  const auto in_b = make_bus(nl, 8, "b");
  const auto out_a = build_sbox_netlist(nl, in_a);
  const auto out_b = build_sbox_netlist(nl, in_b);
  Simulator sim{nl};
  sim.set_word(in_a, 0x53);
  sim.set_word(in_b, 0x10);
  sim.settle();
  EXPECT_EQ(sim.read_word(out_a), 0xed);
  EXPECT_EQ(sim.read_word(out_b), 0xca);
}

TEST(MixColumnNetlist, MatchesFipsExampleColumn) {
  // FIPS-197 / well-known MixColumns vector: [db 13 53 45] -> [8e 4d a1 bc].
  Netlist nl{"mixcol"};
  const auto in = make_bus(nl, 32, "c");
  const auto out = build_mix_column_netlist(nl, in);
  ASSERT_EQ(out.size(), 32u);

  Simulator sim{nl};
  const std::uint64_t input = 0x455313dbull;  // byte 0 = 0xdb in the low bits
  sim.set_word(in, input);
  sim.settle();
  EXPECT_EQ(sim.read_word(out), 0xbca14d8eull);
}

TEST(MixColumnNetlist, MatchesReferenceOnRandomColumns) {
  Netlist nl{"mixcol"};
  const auto in = make_bus(nl, 32, "c");
  const auto out = build_mix_column_netlist(nl, in);
  Simulator sim{nl};
  emts::Rng rng{77};

  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t v = rng.next_u64() & 0xffffffffull;
    // Reference: run the full cipher's mix on one column embedded in a block.
    Block block{};
    for (int b = 0; b < 4; ++b) {
      block[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    // Recompute expected column with the same arithmetic the builder mirrors.
    const std::uint8_t a0 = block[0], a1 = block[1], a2 = block[2], a3 = block[3];
    const std::uint64_t expected =
        static_cast<std::uint64_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3) |
        (static_cast<std::uint64_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3) << 8) |
        (static_cast<std::uint64_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3)) << 16) |
        (static_cast<std::uint64_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2)) << 24);

    sim.set_word(in, v);
    sim.settle();
    ASSERT_EQ(sim.read_word(out), expected) << "column " << std::hex << v;
  }
}

TEST(MixColumnNetlist, IsPureXorNetwork) {
  Netlist nl{"mixcol"};
  const auto in = make_bus(nl, 32, "c");
  build_mix_column_netlist(nl, in);
  const auto report = nl.gate_count();
  const auto xor_count =
      report.count_by_type[static_cast<std::size_t>(netlist::CellType::kXor2)];
  EXPECT_EQ(xor_count, report.cell_count) << "xtime is linear: XOR gates only";
}

TEST(AddRoundKeyNetlist, XorsStateWithKey) {
  Netlist nl{"ark"};
  const auto state = make_bus(nl, 16, "s");
  const auto key = make_bus(nl, 16, "k");
  const auto out = build_add_round_key_netlist(nl, state, key);
  Simulator sim{nl};
  sim.set_word(state, 0xa5f0);
  sim.set_word(key, 0x0ff0);
  sim.settle();
  EXPECT_EQ(sim.read_word(out), 0xa5f0u ^ 0x0ff0u);
}

TEST(AddRoundKeyNetlist, RejectsMismatchedBuses) {
  Netlist nl;
  const auto a = make_bus(nl, 4, "a");
  const auto b = make_bus(nl, 5, "b");
  EXPECT_THROW(build_add_round_key_netlist(nl, a, b), emts::precondition_error);
}

TEST(SubBytesThenMixColumn, ComposedPipelineMatchesReference) {
  // Chain four S-boxes into a MixColumns column — one quarter of a real AES
  // round's combinational datapath, executed gate by gate.
  Netlist nl{"round_slice"};
  std::vector<NetId> state_in = make_bus(nl, 32, "st");
  std::vector<NetId> after_sub;
  for (int byte = 0; byte < 4; ++byte) {
    std::vector<NetId> in8(state_in.begin() + 8 * byte, state_in.begin() + 8 * (byte + 1));
    const auto out8 = build_sbox_netlist(nl, in8);
    after_sub.insert(after_sub.end(), out8.begin(), out8.end());
  }
  const auto out = build_mix_column_netlist(nl, after_sub);

  Simulator sim{nl};
  emts::Rng rng{99};
  for (int trial = 0; trial < 16; ++trial) {
    const std::uint64_t v = rng.next_u64() & 0xffffffffull;
    std::array<std::uint8_t, 4> s{};
    for (int b = 0; b < 4; ++b) {
      s[static_cast<std::size_t>(b)] = sbox(static_cast<std::uint8_t>(v >> (8 * b)));
    }
    const std::uint64_t expected =
        static_cast<std::uint64_t>(gf_mul(s[0], 2) ^ gf_mul(s[1], 3) ^ s[2] ^ s[3]) |
        (static_cast<std::uint64_t>(s[0] ^ gf_mul(s[1], 2) ^ gf_mul(s[2], 3) ^ s[3]) << 8) |
        (static_cast<std::uint64_t>(s[0] ^ s[1] ^ gf_mul(s[2], 2) ^ gf_mul(s[3], 3)) << 16) |
        (static_cast<std::uint64_t>(gf_mul(s[0], 3) ^ s[1] ^ s[2] ^ gf_mul(s[3], 2)) << 24);

    sim.set_word(state_in, v);
    sim.settle();
    ASSERT_EQ(sim.read_word(out), expected);
  }
}

}  // namespace
}  // namespace emts::aes
