#include "aes/activity.hpp"

#include <gtest/gtest.h>

#include "aes/gate_model.hpp"
#include "util/rng.hpp"

namespace emts::aes {
namespace {

Key random_key(std::uint64_t seed) {
  emts::Rng rng{seed};
  Key k{};
  for (auto& b : k) b = static_cast<std::uint8_t>(rng.next_u32());
  return k;
}

Block random_block(emts::Rng& rng) {
  Block b{};
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u32());
  return b;
}

TEST(AesActivity, ProducesOneRecordPerCycle) {
  const AesActivityModel model{random_key(1)};
  emts::Rng rng{2};
  const auto cycles = model.encrypt_activity(random_block(rng));
  EXPECT_EQ(cycles.size(), kCyclesPerEncryption);
}

TEST(AesActivity, CiphertextOutMatchesCipher) {
  const Key key = random_key(3);
  const AesActivityModel model{key};
  emts::Rng rng{4};
  const Block pt = random_block(rng);
  Block ct{};
  model.encrypt_activity(pt, &ct);
  EXPECT_EQ(ct, encrypt(key, pt));
}

TEST(AesActivity, RoundCyclesHaveSboxActivity) {
  const AesActivityModel model{random_key(5)};
  emts::Rng rng{6};
  const auto cycles = model.encrypt_activity(random_block(rng));
  for (std::size_t c = 1; c <= 10; ++c) {
    EXPECT_GT(cycles[c][static_cast<std::size_t>(AesUnit::kSboxArray)].toggles, 0.0)
        << "cycle " << c;
    EXPECT_GT(cycles[c][static_cast<std::size_t>(AesUnit::kStateRegisters)].toggles, 0.0);
  }
}

TEST(AesActivity, FinalRoundSkipsMixColumns) {
  const AesActivityModel model{random_key(7)};
  emts::Rng rng{8};
  const auto cycles = model.encrypt_activity(random_block(rng));
  EXPECT_DOUBLE_EQ(cycles[10][static_cast<std::size_t>(AesUnit::kMixColumns)].toggles, 0.0);
  EXPECT_GT(cycles[5][static_cast<std::size_t>(AesUnit::kMixColumns)].toggles, 0.0);
}

TEST(AesActivity, ControlUnitAlwaysActive) {
  const AesActivityModel model{random_key(9)};
  emts::Rng rng{10};
  const auto cycles = model.encrypt_activity(random_block(rng));
  for (const auto& c : cycles) {
    EXPECT_GT(c[static_cast<std::size_t>(AesUnit::kControl)].toggles, 0.0);
  }
}

TEST(AesActivity, IdleCycleOnlyClocksControl) {
  const auto idle = AesActivityModel::idle_cycle();
  EXPECT_GT(idle[static_cast<std::size_t>(AesUnit::kControl)].toggles, 0.0);
  for (std::size_t u = 0; u < kAesUnitCount; ++u) {
    if (u == static_cast<std::size_t>(AesUnit::kControl)) continue;
    EXPECT_DOUBLE_EQ(idle[u].toggles, 0.0);
  }
}

TEST(AesActivity, ActivityIsDataDependent) {
  const AesActivityModel model{random_key(11)};
  emts::Rng rng{12};
  const auto a = model.encrypt_activity(random_block(rng));
  const auto b = model.encrypt_activity(random_block(rng));
  // At least one round cycle must differ in S-box toggles between two random
  // plaintexts — that's the whole basis of side-channel fingerprinting.
  bool differs = false;
  for (std::size_t c = 1; c <= 10 && !differs; ++c) {
    differs = a[c][static_cast<std::size_t>(AesUnit::kSboxArray)].toggles !=
              b[c][static_cast<std::size_t>(AesUnit::kSboxArray)].toggles;
  }
  EXPECT_TRUE(differs);
}

TEST(AesActivity, SameInputsGiveIdenticalActivity) {
  const Key key = random_key(13);
  const AesActivityModel model{key};
  emts::Rng rng{14};
  const Block pt = random_block(rng);
  const auto a = model.encrypt_activity(pt);
  const auto b = model.encrypt_activity(pt);
  for (std::size_t c = 0; c < a.size(); ++c) {
    for (std::size_t u = 0; u < kAesUnitCount; ++u) {
      EXPECT_DOUBLE_EQ(a[c][u].toggles, b[c][u].toggles);
    }
  }
}

TEST(AesActivity, TimingOrdersRegistersBeforeCombinational) {
  const AesActivityModel model{random_key(15)};
  emts::Rng rng{16};
  const auto cycles = model.encrypt_activity(random_block(rng));
  const auto& round = cycles[4];
  const double reg_onset = round[static_cast<std::size_t>(AesUnit::kStateRegisters)].onset_ps;
  const double sbox_onset = round[static_cast<std::size_t>(AesUnit::kSboxArray)].onset_ps;
  const double mc_onset = round[static_cast<std::size_t>(AesUnit::kMixColumns)].onset_ps;
  EXPECT_LT(reg_onset, sbox_onset);
  EXPECT_LT(sbox_onset, mc_onset);
}

TEST(AesActivity, UnitNamesAreDistinct) {
  for (std::size_t i = 0; i < kAesUnitCount; ++i) {
    for (std::size_t j = i + 1; j < kAesUnitCount; ++j) {
      EXPECT_STRNE(unit_name(static_cast<AesUnit>(i)), unit_name(static_cast<AesUnit>(j)));
    }
  }
}

TEST(AesGateModel, TotalsMatchPaperTableOne) {
  const auto model = default_aes_gate_model();
  EXPECT_EQ(model.total_cells, 33083u);  // Table I AES gate count
  EXPECT_GT(model.total_area_um2, 0.0);
}

TEST(AesGateModel, SboxArrayDominates) {
  const auto model = default_aes_gate_model();
  EXPECT_GT(model.unit(AesUnit::kSboxArray).cells, model.total_cells / 2);
  for (std::size_t u = 0; u < kAesUnitCount; ++u) {
    EXPECT_GT(model.units[u].cells, 0u) << "unit " << u;
  }
}

TEST(AesGateModel, UnitCellsSumToTotal) {
  const auto model = default_aes_gate_model();
  std::size_t sum = 0;
  for (const auto& u : model.units) sum += u.cells;
  EXPECT_EQ(sum, model.total_cells);
}

}  // namespace
}  // namespace emts::aes
