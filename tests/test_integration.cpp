// End-to-end integration: the simulated chip feeds the trust-evaluation
// core exactly as the paper's measurement campaign feeds its data-analysis
// module. These tests reproduce the paper's qualitative claims:
//   * all four digital Trojans detected by the on-chip sensor (Sec. IV-C),
//   * the A2 triggering state caught in the frequency domain (Fig. 4),
//   * T3 invisible to the spectral method (Fig. 6(k)),
//   * the runtime monitor raising an alarm when a Trojan activates (Fig. 1).
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "sim/chip.hpp"
#include "util/assert.hpp"

namespace emts {
namespace {

using core::TraceSet;
using sim::Chip;
using sim::Pickup;
using trojan::TrojanKind;

Chip& chip() {
  static Chip instance{sim::make_default_config()};
  instance.disarm_all();
  return instance;
}

TraceSet capture_set(Chip& c, Pickup pickup, std::size_t n, std::uint64_t base) {
  TraceSet set;
  set.sample_rate = c.sample_rate();
  for (std::size_t t = 0; t < n; ++t) {
    set.add(c.capture(true, base + t).of(pickup));
  }
  return set;
}

const core::EuclideanDetector& onchip_detector() {
  static const core::EuclideanDetector detector = [] {
    const auto golden = capture_set(chip(), Pickup::kOnChipSensor, 48, 10000);
    return core::EuclideanDetector::calibrate(golden);
  }();
  return detector;
}

TEST(Integration, AllFourDigitalTrojansExceedEqOneThreshold) {
  Chip& c = chip();
  const auto& det = onchip_detector();
  for (TrojanKind kind : {TrojanKind::kT1AmLeak, TrojanKind::kT2Leakage, TrojanKind::kT3Cdma,
                          TrojanKind::kT4PowerHog}) {
    c.arm(kind);
    const auto suspect = capture_set(c, Pickup::kOnChipSensor, 16, 20000);
    const double distance = det.population_distance(suspect);
    EXPECT_GT(distance, det.threshold()) << trojan::kind_label(kind);
    c.disarm_all();
  }
}

TEST(Integration, DistanceOrderingMatchesPaper) {
  // Sec. IV-C: T4 (0.28) >= T1 (0.27) > T2 (0.25) >> T3 (0.05).
  Chip& c = chip();
  const auto& det = onchip_detector();
  auto dist = [&](TrojanKind kind) {
    c.arm(kind);
    const double d = det.population_distance(capture_set(c, Pickup::kOnChipSensor, 16, 21000));
    c.disarm_all();
    return d;
  };
  const double d1 = dist(TrojanKind::kT1AmLeak);
  const double d2 = dist(TrojanKind::kT2Leakage);
  const double d3 = dist(TrojanKind::kT3Cdma);
  const double d4 = dist(TrojanKind::kT4PowerHog);
  EXPECT_GT(d1, d2 * 0.8);
  EXPECT_GT(d4, d2 * 0.8);
  EXPECT_LT(d3, 0.4 * d2) << "T3 must be by far the hardest";
  EXPECT_LT(d3, 0.4 * d1);
  EXPECT_LT(d3, 0.4 * d4);
}

TEST(Integration, GoldenPopulationStaysNearThreshold) {
  Chip& c = chip();
  const auto& det = onchip_detector();
  const auto fresh = capture_set(c, Pickup::kOnChipSensor, 16, 30000);
  EXPECT_LT(det.population_distance(fresh), det.threshold());
}

TEST(Integration, A2DetectedSpectrallyBetweenClockAndHarmonic) {
  Chip& c = chip();
  const auto golden = capture_set(c, Pickup::kOnChipSensor, 16, 40000);
  const auto spectral = core::SpectralDetector::calibrate(golden);

  c.arm(TrojanKind::kA2Analog);
  const auto triggering = capture_set(c, Pickup::kOnChipSensor, 16, 41000);
  c.disarm_all();

  const auto report = spectral.analyze(triggering);
  ASSERT_TRUE(report.anomalous()) << "A2 triggering state must add a spectral spot (Fig. 4)";
  bool between = false;
  for (const auto& a : report.anomalies) {
    if (a.frequency_hz > 48e6 && a.frequency_hz < 96e6) between = true;
  }
  EXPECT_TRUE(between) << "the activation peak sits between the clock and its 2nd harmonic";
}

TEST(Integration, SpectralDetectorMissesT3AsInPaper) {
  // Fig. 6(k): "the frequency spots are not distinguished clearly because of
  // the extreme low overhead of the Trojan 3."
  Chip& c = chip();
  const auto golden = capture_set(c, Pickup::kOnChipSensor, 16, 42000);
  const auto spectral = core::SpectralDetector::calibrate(golden);
  c.arm(TrojanKind::kT3Cdma);
  const auto suspect = capture_set(c, Pickup::kOnChipSensor, 16, 43000);
  c.disarm_all();
  EXPECT_FALSE(spectral.analyze(suspect).anomalous());
}

TEST(Integration, SpectralDetectorCatchesT1Carrier) {
  // Fig. 6(i): T1 introduces extra energy at a low frequency (750 kHz).
  Chip& c = chip();
  const auto golden = capture_set(c, Pickup::kOnChipSensor, 16, 44000);
  const auto spectral = core::SpectralDetector::calibrate(golden);
  c.arm(TrojanKind::kT1AmLeak);
  const auto suspect = capture_set(c, Pickup::kOnChipSensor, 16, 45000);
  c.disarm_all();
  const auto report = spectral.analyze(suspect);
  ASSERT_TRUE(report.anomalous());
  bool low_freq = false;
  for (const auto& a : report.anomalies) {
    if (a.frequency_hz < 5e6) low_freq = true;
  }
  EXPECT_TRUE(low_freq) << "T1's AM carrier adds low-frequency energy";
}

TEST(Integration, ExternalProbeSeparatesWorseThanSensor) {
  // The Fig. 6 top-row vs middle-row comparison, as a separation statistic.
  Chip& c = chip();

  const auto golden_probe = capture_set(c, Pickup::kExternalProbe, 32, 50000);
  const auto det_probe = core::EuclideanDetector::calibrate(golden_probe);

  c.arm(TrojanKind::kT3Cdma);
  const auto t3_probe = capture_set(c, Pickup::kExternalProbe, 16, 51000);
  const auto t3_sensor = capture_set(c, Pickup::kOnChipSensor, 16, 51000);
  c.disarm_all();

  const double margin_probe =
      det_probe.population_distance(t3_probe) / det_probe.threshold();
  const double margin_sensor =
      onchip_detector().population_distance(t3_sensor) / onchip_detector().threshold();
  EXPECT_GT(margin_sensor, margin_probe)
      << "the on-chip sensor must out-separate the external probe on the hardest Trojan";
}

TEST(Integration, RuntimeMonitorRaisesAlarmWhenTrojanActivates) {
  Chip& c = chip();
  core::RuntimeMonitor::Options opt;
  opt.calibration_traces = 24;
  opt.alarm_debounce = 3;
  core::RuntimeMonitor monitor{c.sample_rate(), opt};

  bool alarmed = false;
  monitor.on_alarm([&](const core::TrustReport&) { alarmed = true; });

  // Deployment: calibration on the trusted window, then normal operation.
  std::uint64_t t = 60000;
  for (int i = 0; i < 30; ++i) monitor.push(c.capture(true, t++).onchip_v);
  ASSERT_EQ(monitor.state(), core::MonitorState::kMonitoring);
  ASSERT_FALSE(alarmed);

  // The attacker triggers T2 in the field.
  c.arm(TrojanKind::kT2Leakage);
  for (int i = 0; i < 8 && !alarmed; ++i) monitor.push(c.capture(true, t++).onchip_v);
  c.disarm_all();
  EXPECT_TRUE(alarmed);
  EXPECT_EQ(monitor.state(), core::MonitorState::kAlarm);
}

TEST(Integration, TrustEvaluatorEndToEndVerdicts) {
  Chip& c = chip();
  const auto eval =
      core::TrustEvaluator::calibrate(capture_set(c, Pickup::kOnChipSensor, 32, 70000));

  const auto clean = eval.evaluate(capture_set(c, Pickup::kOnChipSensor, 12, 71000));
  EXPECT_EQ(clean.verdict, core::Verdict::kTrusted) << clean.summary();

  c.arm(TrojanKind::kT4PowerHog);
  const auto infected = eval.evaluate(capture_set(c, Pickup::kOnChipSensor, 12, 72000));
  c.disarm_all();
  EXPECT_NE(infected.verdict, core::Verdict::kTrusted) << infected.summary();
  EXPECT_GT(infected.mean_distance, clean.mean_distance);
}

}  // namespace
}  // namespace emts
