#include "netlist/timing.hpp"

#include <gtest/gtest.h>

#include "aes/datapath_netlist.hpp"
#include "netlist/builders.hpp"
#include "util/assert.hpp"

namespace emts::netlist {
namespace {

TEST(Timing, EmptyFabricHasZeroDelay) {
  Netlist nl;
  nl.add_net("floating");
  const auto report = analyze_timing(nl);
  EXPECT_DOUBLE_EQ(report.critical_delay_ps, 0.0);
  EXPECT_TRUE(report.critical_path.empty());
}

TEST(Timing, InverterChainDelayAccumulates) {
  Netlist nl;
  NetId prev = nl.add_net("in");
  nl.mark_primary_input(prev);
  for (int i = 0; i < 5; ++i) {
    const NetId out = nl.add_net();
    nl.add_cell(CellType::kInv, {prev}, out);
    prev = out;
  }
  nl.mark_primary_output(prev);
  const auto report = analyze_timing(nl);
  EXPECT_DOUBLE_EQ(report.critical_delay_ps, 5.0 * cell_info(CellType::kInv).delay_ps);
  EXPECT_EQ(report.critical_path.size(), 5u);
}

TEST(Timing, WorstInputDominatesConvergence) {
  // Two paths converge on an AND gate: one INV (60 ps) vs three INVs (180
  // ps); arrival at the AND output = 180 + 120.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId short_path = nl.add_net();
  nl.add_cell(CellType::kInv, {a}, short_path);
  NetId long_path = b;
  for (int i = 0; i < 3; ++i) {
    const NetId n = nl.add_net();
    nl.add_cell(CellType::kInv, {long_path}, n);
    long_path = n;
  }
  const NetId out = nl.add_net("out");
  nl.add_cell(CellType::kAnd2, {short_path, long_path}, out);
  nl.mark_primary_output(out);

  const auto report = analyze_timing(nl);
  EXPECT_DOUBLE_EQ(report.critical_delay_ps,
                   3.0 * cell_info(CellType::kInv).delay_ps +
                       cell_info(CellType::kAnd2).delay_ps);
  // Critical path: the three inverters then the AND.
  EXPECT_EQ(report.critical_path.size(), 4u);
}

TEST(Timing, FlopsBreakTimingPaths) {
  // in -> INV -> DFF -> INV -> out: two separate paths, each one INV deep
  // (plus clk-to-Q on the launch side of the second).
  Netlist nl;
  const NetId in = nl.add_net("in");
  const NetId d = nl.add_net();
  nl.add_cell(CellType::kInv, {in}, d);
  const NetId q = nl.add_net();
  nl.add_cell(CellType::kDff, {d}, q);
  const NetId out = nl.add_net("out");
  nl.add_cell(CellType::kInv, {q}, out);
  nl.mark_primary_output(out);

  const auto report = analyze_timing(nl);
  const double inv = cell_info(CellType::kInv).delay_ps;
  const double clk_to_q = cell_info(CellType::kDff).delay_ps;
  EXPECT_DOUBLE_EQ(report.critical_delay_ps, clk_to_q + inv);
  // The D-pin endpoint sees only one INV.
  EXPECT_DOUBLE_EQ(report.arrival_ps[d], inv);
}

TEST(Timing, RejectsCombinationalCycle) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_cell(CellType::kInv, {a}, b);
  nl.add_cell(CellType::kInv, {b}, a);
  EXPECT_THROW(analyze_timing(nl), emts::precondition_error);
}

TEST(Timing, CounterMeetsTheChipClock) {
  Netlist nl;
  const NetId en = nl.add_net("en");
  build_counter(nl, 24, en);
  const auto report = analyze_timing(nl);
  EXPECT_GT(report.critical_delay_ps, 0.0);
  EXPECT_TRUE(report.meets_period(1e12 / 48e6)) << report.critical_delay_ps << " ps";
}

TEST(Timing, SynthesizedAesCoreMeets48MHz) {
  // The design decision behind the chip model's 48 MHz clock, verified
  // against the actual synthesized round datapath: S-box tree + MixColumns
  // + muxes + AddRoundKey must settle well inside the 20,833 ps period.
  const auto core = aes::build_aes_core_netlist();
  const auto report = analyze_timing(core.netlist);
  EXPECT_GT(report.critical_delay_ps, 1000.0) << "a real round path is nanoseconds deep";
  EXPECT_TRUE(report.meets_period(1e12 / 48e6, /*margin_ps=*/2000.0))
      << "critical path " << report.critical_delay_ps << " ps vs 20833 ps period";
  EXPECT_GE(report.critical_path.size(), 5u);
}

}  // namespace
}  // namespace emts::netlist
