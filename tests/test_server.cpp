// IngestServer over a real unix-domain socket: a client thread streams EMWF
// frames exactly the way `emsentry_cli replay-client` does, and the tests
// assert the daemon's counters, the fleet's per-device state, and the
// shutdown snapshot / stats artifacts.
#include "fleet/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "io/snapshot.hpp"
#include "io/wire.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

#if defined(__has_feature)
#define EMTS_HAS_TSAN_FEATURE __has_feature(thread_sanitizer)
#else
#define EMTS_HAS_TSAN_FEATURE 0
#endif

namespace emts::fleet {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

core::Trace golden_trace(emts::Rng& rng) {
  core::Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

core::TraceSet make_set(std::size_t n, std::uint64_t seed) {
  emts::Rng rng{seed};
  core::TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) set.add(golden_trace(rng));
  return set;
}

const core::TrustEvaluator& fitted() {
  static const core::TrustEvaluator evaluator =
      core::TrustEvaluator::calibrate(make_set(30, 1));
  return evaluator;
}

core::RuntimeMonitor::Options small_options() {
  core::RuntimeMonitor::Options opt;
  opt.alarm_debounce = 3;
  opt.spectral_window = 8;
  return opt;
}

FleetOptions fleet_options() {
  FleetOptions options;
  options.shards = 2;
  options.monitor = small_options();
  return options;
}

/// Connects to the server's unix socket, retrying while the accept loop
/// starts up. Returns the connected fd.
int connect_to(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EMTS_REQUIRE(fd >= 0, "test socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EMTS_REQUIRE(socket_path.size() < sizeof addr.sun_path, "socket path too long");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
  EMTS_REQUIRE(false, "could not connect to " + socket_path);
  return -1;
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    EMTS_REQUIRE(n > 0, "test write() failed");
    sent += static_cast<std::size_t>(n);
  }
}

std::string encode_frames(const std::string& device_id, const core::TraceSet& batch) {
  std::string bytes;
  for (const core::Trace& trace : batch.traces) {
    io::wire::encode_trace_frame(device_id, batch.sample_rate, trace.data(), trace.size(),
                                 bytes);
  }
  return bytes;
}

class ServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::filesystem::remove(socket_path_);
    std::filesystem::remove(snapshot_path_);
    std::filesystem::remove(stats_path_);
  }

  /// Short socket paths: sun_path caps at ~107 bytes and temp dirs can be
  /// deep, so anchor them with the pid under /tmp directly.
  std::string suffix_ = std::to_string(::getpid());
  std::string socket_path_ = "/tmp/emts_test_" + suffix_ + ".sock";
  std::string snapshot_path_ =
      (std::filesystem::temp_directory_path() / ("emts_server_test_" + suffix_ + ".emfs"))
          .string();
  std::string stats_path_ =
      (std::filesystem::temp_directory_path() / ("emts_server_test_" + suffix_ + ".json"))
          .string();
};

TEST_F(ServerTest, StreamsFramesIntoTheFleet) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  fleet.add_device("chip-01", fitted());

  ServerOptions options;
  options.socket_path = socket_path_;
  IngestServer server{fleet, options};

  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const core::TraceSet batch_a = make_set(6, 2);
  const core::TraceSet batch_b = make_set(4, 3);
  const int fd = connect_to(socket_path_);
  const std::string bytes =
      encode_frames("chip-00", batch_a) + encode_frames("chip-01", batch_b);
  send_all(fd, bytes.data(), bytes.size());
  ::close(fd);

  // The server ingests asynchronously; wait for all 10 frames to be scored.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 10) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  serve.join();

  const ServerCounters& counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.frames_accepted, 10u);
  EXPECT_EQ(counters.frames_rejected, 0u);
  EXPECT_EQ(counters.bytes_received, bytes.size());

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.traces_processed, 10u);
  ASSERT_EQ(stats.sessions.size(), 2u);
  EXPECT_EQ(stats.sessions[0].monitor.scored_captures, 6u);
  EXPECT_EQ(stats.sessions[1].monitor.scored_captures, 4u);
}

TEST_F(ServerTest, ScoresMatchDirectSubmission) {
  // The socket hop must not perturb anything: a device streamed through the
  // daemon scores bit-identically to one fed through submit_batch directly.
  const core::TraceSet batch = make_set(9, 4);

  FleetMonitor direct{fleet_options()};
  direct.add_device("chip-00", fitted());
  direct.submit_batch("chip-00", batch);
  direct.flush();

  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.socket_path = socket_path_;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const int fd = connect_to(socket_path_);
  const std::string bytes = encode_frames("chip-00", batch);
  send_all(fd, bytes.data(), bytes.size());
  ::close(fd);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < batch.size()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  serve.join();

  const FleetStats expect = direct.stats();
  const FleetStats got = fleet.stats();
  ASSERT_EQ(got.sessions.size(), 1u);
  EXPECT_EQ(got.sessions[0].state, expect.sessions[0].state);
  EXPECT_EQ(got.sessions[0].last_score, expect.sessions[0].last_score);
  EXPECT_EQ(got.sessions[0].monitor.scored_captures, expect.sessions[0].monitor.scored_captures);
}

TEST_F(ServerTest, UnknownDeviceFramesAreRejectedNotFatal) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.socket_path = socket_path_;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const core::TraceSet known = make_set(3, 5);
  const core::TraceSet unknown = make_set(2, 6);
  const int fd = connect_to(socket_path_);
  // Interleave: rejected frames must not derail the frames around them.
  const std::string bytes = encode_frames("chip-00", known) +
                            encode_frames("ghost", unknown) +
                            encode_frames("chip-00", known);
  send_all(fd, bytes.data(), bytes.size());
  ::close(fd);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 6) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().frames_accepted, 6u);
  EXPECT_EQ(server.counters().frames_rejected, 2u);
  EXPECT_EQ(fleet.stats().traces_processed, 6u);
}

TEST_F(ServerTest, GarbageBytesDropTheConnectionOnly) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.socket_path = socket_path_;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  // First client: garbage. The server must drop it and keep serving.
  {
    const int fd = connect_to(socket_path_);
    const std::string garbage(64, 'Z');
    send_all(fd, garbage.data(), garbage.size());
    ::close(fd);
  }

  // Second client: valid traffic still flows.
  const core::TraceSet batch = make_set(3, 7);
  const int fd = connect_to(socket_path_);
  const std::string bytes = encode_frames("chip-00", batch);
  send_all(fd, bytes.data(), bytes.size());
  ::close(fd);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().connections_dropped, 1u);
  EXPECT_EQ(server.counters().frames_accepted, 3u);
}

TEST_F(ServerTest, ShutdownWritesSnapshotAndStats) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  fleet.add_device("chip-01", fitted());

  ServerOptions options;
  options.socket_path = socket_path_;
  options.snapshot_path = snapshot_path_;
  options.stats_path = stats_path_;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const core::TraceSet batch = make_set(5, 8);
  const int fd = connect_to(socket_path_);
  const std::string bytes = encode_frames("chip-00", batch);
  send_all(fd, bytes.data(), bytes.size());
  ::close(fd);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 5) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  serve.join();

  EXPECT_EQ(server.counters().snapshots_written, 1u);
  EXPECT_EQ(server.counters().stats_exports, 1u);

  // The shutdown snapshot is a loadable EMFS image of the served fleet.
  const io::FleetSnapshot snapshot = io::load_fleet_snapshot(snapshot_path_);
  ASSERT_EQ(snapshot.devices.size(), 2u);
  EXPECT_EQ(snapshot.devices[0].device_id, "chip-00");
  EXPECT_EQ(snapshot.devices[0].monitor.stats.scored_captures, 5u);
  EXPECT_EQ(snapshot.devices[1].monitor.stats.scored_captures, 0u);

  // The socket path is unlinked on shutdown; the stats export is JSON with
  // the versioned schema marker.
  EXPECT_FALSE(std::filesystem::exists(socket_path_));
  std::ifstream stats_file{stats_path_};
  std::stringstream stats;
  stats << stats_file.rdbuf();
  EXPECT_NE(stats.str().find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(stats.str().find("\"chip-01\""), std::string::npos);
}

TEST_F(ServerTest, SnapshotRequestHonoredOnIdleRound) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());

  ServerOptions options;
  options.socket_path = socket_path_;
  options.snapshot_path = snapshot_path_;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const core::TraceSet batch = make_set(4, 9);
  const int fd = connect_to(socket_path_);
  const std::string bytes = encode_frames("chip-00", batch);
  send_all(fd, bytes.data(), bytes.size());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 4) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Client is quiet; the request lands on an idle round after everything
  // already sent has been ingested.
  snapshot_request = true;
  while (!std::filesystem::exists(snapshot_path_)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "snapshot timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const io::FleetSnapshot mid = io::load_fleet_snapshot(snapshot_path_);
  ASSERT_EQ(mid.devices.size(), 1u);
  EXPECT_EQ(mid.devices[0].monitor.stats.scored_captures, 4u);

  ::close(fd);
  stop = true;
  serve.join();
  // Shutdown wrote a second (overwriting) snapshot.
  EXPECT_EQ(server.counters().snapshots_written, 2u);
}

TEST_F(ServerTest, WallClockCadenceWritesSnapshotsWhileIdle) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());

  ServerOptions options;
  options.socket_path = socket_path_;
  options.snapshot_path = snapshot_path_;
  options.snapshot_every_ms = 20;
  options.poll_timeout_ms = 5;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const core::TraceSet batch = make_set(3, 10);
  const int fd = connect_to(socket_path_);
  const std::string bytes = encode_frames("chip-00", batch);
  send_all(fd, bytes.data(), bytes.size());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Client goes quiet: the wall-clock cadence alone must keep producing
  // snapshots on idle rounds, no SIGUSR1 and no frame threshold involved.
  // The live counter belongs to the server thread, so observe the artifact
  // instead: every snapshot is a tmp+rename, which lands on a fresh inode.
  struct stat first {};
  while (::stat(snapshot_path_.c_str(), &first) != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "cadence snapshot timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  struct stat second {};
  while (::stat(snapshot_path_.c_str(), &second) != 0 || second.st_ino == first.st_ino) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "second cadence snapshot timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const io::FleetSnapshot mid = io::load_fleet_snapshot(snapshot_path_);
  ASSERT_EQ(mid.devices.size(), 1u);
  EXPECT_EQ(mid.devices[0].monitor.stats.scored_captures, 3u);

  ::close(fd);
  stop = true;
  serve.join();
  EXPECT_GE(server.counters().snapshots_written, 2u);
}

TEST_F(ServerTest, CadenceHonoredUnderGapFreeStreaming) {
  // Regression: snapshots used to wait for an idle poll round, so a client
  // that never pauses starved the daemon of snapshots forever. A due cut
  // overshooting its deadline by a poll interval must now be forced onto a
  // busy round.
#if defined(__SANITIZE_THREAD__) || EMTS_HAS_TSAN_FEATURE
  // Under TSan a single busy poll round can outlast the whole cadence budget
  // (thousands of buffered frames × instrumented spectral pushes under BLOCK),
  // so the wall-clock deadlines below measure the sanitizer, not the daemon.
  GTEST_SKIP() << "wall-clock cadence assertions are meaningless under TSan";
#endif
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());

  ServerOptions options;
  options.socket_path = socket_path_;
  options.snapshot_path = snapshot_path_;
  options.snapshot_every_ms = 20;
  options.poll_timeout_ms = 5;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const int fd = connect_to(socket_path_);
  const std::string one = encode_frames("chip-00", make_set(1, 11));
  std::atomic<bool> stream_stop{false};
  std::thread streamer{[&] {
    // Frames every ~0.5 ms against a 5 ms poll: virtually every round has
    // bytes pending, so an idle-only daemon would never cut.
    while (!stream_stop) {
      send_all(fd, one.data(), one.size());
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }};

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  struct stat first {};
  while (::stat(snapshot_path_.c_str(), &first) != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "first cut starved";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  struct stat second {};
  while (::stat(snapshot_path_.c_str(), &second) != 0 || second.st_ino == first.st_ino) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "second cut starved";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  stream_stop = true;
  streamer.join();
  ::close(fd);
  stop = true;
  serve.join();

  EXPECT_GE(server.counters().snapshots_written, 3u);  // >= 2 cadence cuts + shutdown
  EXPECT_GE(server.counters().snapshots_forced, 1u);
  EXPECT_GT(server.counters().frames_accepted, 0u);
  // Whatever instant the forced cut landed on, the artifact is complete.
  const io::FleetSnapshot snap = io::load_fleet_snapshot(snapshot_path_);
  ASSERT_EQ(snap.devices.size(), 1u);
}

TEST_F(ServerTest, RefusesToStealALiveSocket) {
  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.socket_path = socket_path_;
  IngestServer incumbent{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { incumbent.run(stop, snapshot_request); }};
  const int probe = connect_to(socket_path_);  // incumbent is demonstrably live
  ::close(probe);

  // A second daemon must refuse to unlink a socket something answers on.
  FleetMonitor other_fleet{fleet_options()};
  EXPECT_THROW((IngestServer{other_fleet, options}), emts::precondition_error);

  // And the incumbent is unharmed: traffic still flows through it.
  const core::TraceSet batch = make_set(3, 12);
  const int fd = connect_to(socket_path_);
  const std::string bytes = encode_frames("chip-00", batch);
  send_all(fd, bytes.data(), bytes.size());
  ::close(fd);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  serve.join();
  EXPECT_EQ(fleet.stats().traces_processed, 3u);
}

TEST_F(ServerTest, ReclaimsAStaleSocketFile) {
  // A crashed daemon leaves its socket file behind with nothing listening;
  // connect() refuses, so a new daemon may reclaim the path.
  const int old_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(old_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ASSERT_EQ(::bind(old_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ::close(old_fd);  // bound but never listened: every connect() is refused
  ASSERT_TRUE(std::filesystem::exists(socket_path_));

  FleetMonitor fleet{fleet_options()};
  fleet.add_device("chip-00", fitted());
  ServerOptions options;
  options.socket_path = socket_path_;
  IngestServer server{fleet, options};
  std::atomic<bool> stop{false};
  std::atomic<bool> snapshot_request{false};
  std::thread serve{[&] { server.run(stop, snapshot_request); }};

  const core::TraceSet batch = make_set(2, 13);
  const int fd = connect_to(socket_path_);
  const std::string bytes = encode_frames("chip-00", batch);
  send_all(fd, bytes.data(), bytes.size());
  ::close(fd);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.stats().traces_processed < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "ingest timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  serve.join();
  EXPECT_EQ(fleet.stats().traces_processed, 2u);
}

TEST(ServerOptionsTest, RefusesUnusableSocketPath) {
  FleetMonitor fleet{fleet_options()};
  ServerOptions options;
  options.socket_path = "/nonexistent-dir/emts.sock";
  EXPECT_THROW((IngestServer{fleet, options}), emts::precondition_error);
}

// ---------- --snapshot-every cadence parsing ----------

TEST(SnapshotCadence, BareCountMeansFrames) {
  const SnapshotCadence cadence = parse_snapshot_cadence("250");
  EXPECT_EQ(cadence.every_frames, 250u);
  EXPECT_EQ(cadence.every_ms, 0u);
}

TEST(SnapshotCadence, SecondsSuffixMeansWallClockMillis) {
  const SnapshotCadence cadence = parse_snapshot_cadence("5s");
  EXPECT_EQ(cadence.every_frames, 0u);
  EXPECT_EQ(cadence.every_ms, 5000u);
}

TEST(SnapshotCadence, MillisecondsSuffixPassesThrough) {
  const SnapshotCadence cadence = parse_snapshot_cadence("750ms");
  EXPECT_EQ(cadence.every_frames, 0u);
  EXPECT_EQ(cadence.every_ms, 750u);
}

TEST(SnapshotCadence, RejectsGarbage) {
  EXPECT_THROW(parse_snapshot_cadence(""), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("abc"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("10x"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("10 s"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("ms"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("5sms"), emts::precondition_error);
  // Overflow in the digits or in the seconds-to-millis conversion.
  EXPECT_THROW(parse_snapshot_cadence("99999999999999999999"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("18446744073709551615s"), emts::precondition_error);
}

TEST(SnapshotCadence, RejectsZeroInEveryUnit) {
  // "0" parses as a number but silently disables the cadence the user just
  // asked for — a usage error, in every spelling.
  EXPECT_THROW(parse_snapshot_cadence("0"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("0s"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("0ms"), emts::precondition_error);
  EXPECT_THROW(parse_snapshot_cadence("000"), emts::precondition_error);
}

// ---------- TCP endpoint / allowlist parsing ----------

TEST(TcpEndpointParse, ParsesHostAndPort) {
  const TcpEndpoint endpoint = parse_tcp_endpoint("127.0.0.1:7600");
  EXPECT_EQ(endpoint.addr, 0x7f000001u);
  EXPECT_EQ(endpoint.port, 7600u);
}

TEST(TcpEndpointParse, RejectsMalformedEndpoints) {
  EXPECT_THROW(parse_tcp_endpoint(""), emts::precondition_error);
  EXPECT_THROW(parse_tcp_endpoint("127.0.0.1"), emts::precondition_error);       // no port
  EXPECT_THROW(parse_tcp_endpoint(":7600"), emts::precondition_error);           // no host
  EXPECT_THROW(parse_tcp_endpoint("localhost:7600"), emts::precondition_error);  // not numeric
  EXPECT_THROW(parse_tcp_endpoint("127.0.0.1:0"), emts::precondition_error);
  EXPECT_THROW(parse_tcp_endpoint("127.0.0.1:65536"), emts::precondition_error);
  EXPECT_THROW(parse_tcp_endpoint("127.0.0.1:x"), emts::precondition_error);
  EXPECT_THROW(parse_tcp_endpoint("299.0.0.1:7600"), emts::precondition_error);
}

TEST(CidrParse, HostAndBlockRulesMatchAsExpected) {
  const CidrRule host = parse_cidr("10.1.2.3");
  EXPECT_TRUE(cidr_match(host, 0x0a010203u));
  EXPECT_FALSE(cidr_match(host, 0x0a010204u));

  const CidrRule block = parse_cidr("10.1.0.0/16");
  EXPECT_TRUE(cidr_match(block, 0x0a010203u));
  EXPECT_TRUE(cidr_match(block, 0x0a01ffffu));
  EXPECT_FALSE(cidr_match(block, 0x0a020000u));

  const CidrRule all = parse_cidr("0.0.0.0/0");
  EXPECT_TRUE(cidr_match(all, 0xffffffffu));
  EXPECT_TRUE(cidr_match(all, 0u));
}

TEST(CidrParse, RejectsMalformedRules) {
  EXPECT_THROW(parse_cidr(""), emts::precondition_error);
  EXPECT_THROW(parse_cidr("10.1.2"), emts::precondition_error);
  EXPECT_THROW(parse_cidr("10.1.2.3/33"), emts::precondition_error);
  EXPECT_THROW(parse_cidr("10.1.2.3/"), emts::precondition_error);
  EXPECT_THROW(parse_cidr("10.1.2.3/x"), emts::precondition_error);
  EXPECT_THROW(parse_cidr("banana/8"), emts::precondition_error);
}

}  // namespace
}  // namespace emts::fleet
