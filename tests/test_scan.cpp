#include "sim/scan.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace emts::sim {
namespace {

Chip& chip() {
  static Chip instance{make_default_config()};
  instance.disarm_all();
  return instance;
}

ScanSpec coarse_spec() {
  ScanSpec spec;
  spec.nx = 12;
  spec.ny = 12;
  spec.traces = 1;
  return spec;
}

TEST(NearFieldScan, MapGeometryMatchesSpec) {
  const auto map = near_field_scan(chip(), coarse_spec(), true, 0);
  EXPECT_EQ(map.nx, 12u);
  EXPECT_EQ(map.ny, 12u);
  EXPECT_EQ(map.rms.size(), 144u);
  EXPECT_DOUBLE_EQ(map.x1, chip().config().die.core_width);
  EXPECT_GT(map.z, chip().config().die.sensor_z);
  EXPECT_GT(map.max_value(), 0.0);
}

TEST(NearFieldScan, EncryptingChipIsHotterThanIdle) {
  const auto active = near_field_scan(chip(), coarse_spec(), true, 0);
  const auto idle = near_field_scan(chip(), coarse_spec(), false, 0);
  EXPECT_GT(active.max_value(), 3.0 * idle.max_value());
}

TEST(NearFieldScan, DeterministicForSameWindow) {
  const auto a = near_field_scan(chip(), coarse_spec(), true, 5);
  const auto b = near_field_scan(chip(), coarse_spec(), true, 5);
  for (std::size_t i = 0; i < a.rms.size(); ++i) ASSERT_DOUBLE_EQ(a.rms[i], b.rms[i]);
}

TEST(NearFieldScan, RejectsDegenerateSpecs) {
  ScanSpec bad = coarse_spec();
  bad.nx = 1;
  EXPECT_THROW(near_field_scan(chip(), bad, true, 0), emts::precondition_error);
  bad = coarse_spec();
  bad.coil_radius = 0.0;
  EXPECT_THROW(near_field_scan(chip(), bad, true, 0), emts::precondition_error);
  bad = coarse_spec();
  bad.traces = 0;
  EXPECT_THROW(near_field_scan(chip(), bad, true, 0), emts::precondition_error);
}

TEST(Localization, GoldenVsGoldenHasNoContrastSpike) {
  const auto golden = near_field_scan(chip(), coarse_spec(), true, 0);
  const auto again = near_field_scan(chip(), coarse_spec(), true, 0);
  const auto result = localize_anomaly(golden, again, chip().floorplan(), chip().config().die);
  EXPECT_DOUBLE_EQ(result.peak_delta, 0.0);
}

class LocalizeTrojan : public ::testing::TestWithParam<trojan::TrojanKind> {};

TEST_P(LocalizeTrojan, PeakLandsOnTheTrojanColumn) {
  Chip& c = chip();
  const auto spec = coarse_spec();
  const auto golden = near_field_scan(c, spec, true, 0);
  c.arm(GetParam());
  const auto suspect = near_field_scan(c, spec, true, 0);
  c.disarm_all();

  const auto result = localize_anomaly(golden, suspect, c.floorplan(), c.config().die);
  EXPECT_GT(result.peak_delta, 0.0);
  // The Trojan column occupies the right ~25% of the die; any anomaly peak
  // landing there (or resolving to a trojan/* module) counts as localized.
  const bool in_column = result.peak_x > 0.70 * c.config().die.core_width;
  const bool named = result.module_name.rfind("trojan/", 0) == 0;
  EXPECT_TRUE(in_column || named)
      << "peak at (" << result.peak_x << ", " << result.peak_y << ") -> "
      << result.module_name;
}

INSTANTIATE_TEST_SUITE_P(Kinds, LocalizeTrojan,
                         ::testing::Values(trojan::TrojanKind::kT1AmLeak,
                                           trojan::TrojanKind::kT2Leakage,
                                           trojan::TrojanKind::kT4PowerHog,
                                           trojan::TrojanKind::kA2Analog));

TEST(Localization, T4ResolvesToItsOwnModule) {
  Chip& c = chip();
  ScanSpec spec = coarse_spec();
  spec.nx = 20;
  spec.ny = 20;
  const auto golden = near_field_scan(c, spec, true, 0);
  c.arm(trojan::TrojanKind::kT4PowerHog);
  const auto suspect = near_field_scan(c, spec, true, 0);
  c.disarm_all();
  const auto result = localize_anomaly(golden, suspect, c.floorplan(), c.config().die);
  EXPECT_EQ(result.module_name, layout::module_names::kTrojan4);
  EXPECT_GT(result.contrast, 2.0);
}

TEST(Localization, RejectsMismatchedGrids) {
  const auto a = near_field_scan(chip(), coarse_spec(), true, 0);
  ScanSpec other = coarse_spec();
  other.nx = 8;
  const auto b = near_field_scan(chip(), other, true, 0);
  EXPECT_THROW(localize_anomaly(a, b, chip().floorplan(), chip().config().die), emts::precondition_error);
}

}  // namespace
}  // namespace emts::sim
