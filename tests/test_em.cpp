#include "em/biot_savart.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "em/coil.hpp"
#include "em/field_map.hpp"
#include "em/mutual.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::em {
namespace {

using layout::DieSpec;

// Square loop of side `a` centered at origin in the z=0 plane, CCW from +z.
std::vector<Segment> square_loop(double a) {
  const double h = a / 2.0;
  return {
      Segment{Vec3{-h, -h, 0}, Vec3{h, -h, 0}},
      Segment{Vec3{h, -h, 0}, Vec3{h, h, 0}},
      Segment{Vec3{h, h, 0}, Vec3{-h, h, 0}},
      Segment{Vec3{-h, h, 0}, Vec3{-h, -h, 0}},
  };
}

std::vector<Segment> circle_loop(double radius, double z, std::size_t n = 256) {
  std::vector<Segment> path;
  for (std::size_t i = 0; i < n; ++i) {
    const double a0 = 2.0 * units::pi * static_cast<double>(i) / static_cast<double>(n);
    const double a1 = 2.0 * units::pi * static_cast<double>(i + 1) / static_cast<double>(n);
    path.push_back(Segment{Vec3{radius * std::cos(a0), radius * std::sin(a0), z},
                           Vec3{radius * std::cos(a1), radius * std::sin(a1), z}});
  }
  return path;
}

TEST(BiotSavart, LongWireMatchesInfiniteWireFormula) {
  // 2 m segment, field probed 1 mm away at its middle: B = mu0 I / (2 pi d).
  const Segment wire{Vec3{-1, 0, 0}, Vec3{1, 0, 0}};
  const double d = 1e-3;
  const double current = 2.0;
  const Vec3 b = segment_field(wire, current, Vec3{0, d, 0});
  const double expected = units::mu0 * current / (2.0 * units::pi * d);
  EXPECT_NEAR(std::abs(b.z), expected, 1e-6 * expected);
  EXPECT_NEAR(b.x, 0.0, 1e-20);
  EXPECT_NEAR(b.y, 0.0, 1e-20);
}

TEST(BiotSavart, FieldDirectionFollowsRightHandRule) {
  // Current along +x, probe at +y: B must point along -z... check: u x d_hat
  // with u=+x, d=+y gives +z direction times (cos_a - cos_b) > 0 -> +z.
  const Segment wire{Vec3{-1, 0, 0}, Vec3{1, 0, 0}};
  const Vec3 b = segment_field(wire, 1.0, Vec3{0, 0.01, 0});
  EXPECT_GT(b.z, 0.0);
  // Flip the current: field flips.
  const Segment rev{Vec3{1, 0, 0}, Vec3{-1, 0, 0}};
  const Vec3 b2 = segment_field(rev, 1.0, Vec3{0, 0.01, 0});
  EXPECT_LT(b2.z, 0.0);
  EXPECT_NEAR(b.z, -b2.z, 1e-18);
}

TEST(BiotSavart, SquareLoopCenterMatchesAnalytic) {
  // B at the center of a square loop of side a: 2*sqrt(2)*mu0*I/(pi*a).
  const double a = 0.01;
  const double current = 1.5;
  const Vec3 b = path_field(square_loop(a), current, Vec3{0, 0, 0});
  const double expected = 2.0 * std::sqrt(2.0) * units::mu0 * current / (units::pi * a);
  EXPECT_NEAR(b.z, expected, 1e-9 * expected);
}

TEST(BiotSavart, CircularLoopAxisMatchesAnalytic) {
  // On-axis field of a circular loop: mu0 I r^2 / (2 (r^2+z^2)^{3/2}).
  const double r = 5e-3;
  const double z = 2e-3;
  const double current = 0.7;
  const Vec3 b = path_field(circle_loop(r, 0.0), current, Vec3{0, 0, z});
  const double expected =
      units::mu0 * current * r * r / (2.0 * std::pow(r * r + z * z, 1.5));
  EXPECT_NEAR(b.z, expected, 1e-3 * expected);
}

TEST(BiotSavart, FieldScalesLinearlyWithCurrent) {
  const auto loop = square_loop(0.01);
  const Vec3 b1 = path_field(loop, 1.0, Vec3{0.001, 0.002, 0.003});
  const Vec3 b3 = path_field(loop, 3.0, Vec3{0.001, 0.002, 0.003});
  EXPECT_NEAR(b3.z, 3.0 * b1.z, 1e-18);
  EXPECT_NEAR(b3.x, 3.0 * b1.x, 1e-18);
}

TEST(BiotSavart, OnAxisPointIsRegularized) {
  const Segment wire{Vec3{0, 0, 0}, Vec3{1, 0, 0}};
  const Vec3 on_axis = segment_field(wire, 1.0, Vec3{0.5, 0, 0});
  EXPECT_DOUBLE_EQ(on_axis.norm(), 0.0);
  const Vec3 at_end = segment_field(wire, 1.0, Vec3{1, 0, 0});
  EXPECT_DOUBLE_EQ(at_end.norm(), 0.0);
}

TEST(BiotSavart, SubdivisionPreservesField) {
  const Segment wire{Vec3{-0.5, 0, 0}, Vec3{0.5, 0, 0}};
  const Vec3 probe{0.1, 0.02, 0.01};
  const Vec3 whole = segment_field(wire, 1.0, probe);
  Vec3 split{};
  for (const Segment& s : subdivide(wire, 0.07)) {
    split = split + segment_field(s, 1.0, probe);
  }
  EXPECT_NEAR(split.x, whole.x, 1e-12);
  EXPECT_NEAR(split.y, whole.y, 1e-12);
  EXPECT_NEAR(split.z, whole.z, 1e-12);
}

TEST(BiotSavart, SubdivideCountsAndEndpoints) {
  const Segment s{Vec3{0, 0, 0}, Vec3{1, 0, 0}};
  const auto pieces = subdivide(s, 0.3);
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_DOUBLE_EQ(pieces.front().a.x, 0.0);
  EXPECT_DOUBLE_EQ(pieces.back().b.x, 1.0);
  for (std::size_t i = 1; i < pieces.size(); ++i) {
    EXPECT_DOUBLE_EQ(pieces[i].a.x, pieces[i - 1].b.x);
  }
}

TEST(VectorPotential, CurlRecoversField) {
  // Numerically differentiate A and compare with the analytic B.
  const Segment wire{Vec3{-0.3, 0.01, 0}, Vec3{0.4, -0.02, 0.05}};
  const Vec3 p{0.05, 0.06, 0.04};
  const double eps = 1e-6;
  auto a_at = [&](const Vec3& q) { return segment_vector_potential(wire, 1.3, q); };
  const Vec3 dadx = (a_at(Vec3{p.x + eps, p.y, p.z}) - a_at(Vec3{p.x - eps, p.y, p.z})) *
                    (1.0 / (2.0 * eps));
  const Vec3 dady = (a_at(Vec3{p.x, p.y + eps, p.z}) - a_at(Vec3{p.x, p.y - eps, p.z})) *
                    (1.0 / (2.0 * eps));
  const Vec3 dadz = (a_at(Vec3{p.x, p.y, p.z + eps}) - a_at(Vec3{p.x, p.y, p.z - eps})) *
                    (1.0 / (2.0 * eps));
  const Vec3 curl{dady.z - dadz.y, dadz.x - dadx.z, dadx.y - dady.x};
  const Vec3 b = segment_field(wire, 1.3, p);
  EXPECT_NEAR(curl.x, b.x, 1e-6 * b.norm() + 1e-18);
  EXPECT_NEAR(curl.y, b.y, 1e-6 * b.norm() + 1e-18);
  EXPECT_NEAR(curl.z, b.z, 1e-6 * b.norm() + 1e-18);
}

TEST(Flux, UniformFarLoopMatchesBzTimesArea) {
  // Small surface far under a big loop: flux ~ Bz(center) * area.
  const auto loop = circle_loop(0.1, 0.0);
  const TurnSurface surface{TurnSurface::Shape::kRect, 0.001, -0.001, -0.001, 0.001, 0.001};
  const double flux = flux_through_surface(loop, 2.0, surface);
  const double bz = path_field(loop, 2.0, Vec3{0, 0, 0.001}).z;
  EXPECT_NEAR(flux, bz * surface.area(), 0.01 * std::abs(bz * surface.area()));
}

TEST(Flux, ConcentricLoopsMatchAnalyticMutual) {
  // Coplanar concentric circular loops, r_small << r_big:
  // M = mu0 * pi * r_small^2 / (2 * r_big).
  const double r_big = 0.2;
  const double r_small = 0.01;
  const auto big = circle_loop(r_big, 0.0);
  const TurnSurface small_surface{TurnSurface::Shape::kDisk, 0.0, 0.0, 0.0, r_small, 0.0};
  const double m = flux_through_surface(big, 1.0, small_surface, FluxOptions{1e-3});
  const double expected = units::mu0 * units::pi * r_small * r_small / (2.0 * r_big);
  EXPECT_NEAR(m, expected, 0.01 * expected);
}

TEST(Flux, NeumannAgreesWithFluxForSeparatedLoops) {
  // Two coaxial circular loops separated enough for the Neumann sum.
  const double r = 0.05;
  const auto a = circle_loop(r, 0.0, 128);
  const auto b_path = circle_loop(r, 0.02, 128);
  MutualOptions neumann;
  neumann.max_element = 2e-3;
  neumann.regularization = 0.0;
  const double m_neumann = mutual_inductance(a, b_path, neumann);

  const TurnSurface disk{TurnSurface::Shape::kDisk, 0.02, 0.0, 0.0, r, 0.0};
  const double m_flux = flux_through_surface(a, 1.0, disk, FluxOptions{1e-3});
  EXPECT_NEAR(m_neumann, m_flux, 0.03 * std::abs(m_flux));
}

TEST(Flux, ReversingSourceCurrentFlipsSign) {
  const auto loop = square_loop(0.02);
  const TurnSurface surf{TurnSurface::Shape::kRect, 0.002, -0.005, -0.005, 0.005, 0.005};
  const double f1 = flux_through_surface(loop, 1.0, surf);
  const double f2 = flux_through_surface(loop, -1.0, surf);
  EXPECT_NEAR(f1, -f2, 1e-18 + 1e-9 * std::abs(f1));
}

TEST(Coil, OnChipSpiralCoversDieAndMeetsDrc) {
  const DieSpec die{};
  const OnChipSpiralSpec spec{};
  const Coil coil = make_onchip_spiral(die, spec);
  EXPECT_EQ(coil.turns.size(), spec.turns);
  EXPECT_GT(coil.segment_count(), 4 * spec.turns - 1);
  // Every point on the sensor layer.
  for (const Segment& s : coil.path) {
    EXPECT_DOUBLE_EQ(s.a.z, die.sensor_z);
    EXPECT_GE(s.a.x, 0.0);
    EXPECT_LE(s.a.x, die.core_width);
  }
  // Outermost turn reaches near the core edge.
  const auto& outer = coil.turns.back();
  EXPECT_NEAR(outer.p0, spec.margin, 2e-4);
  // Turn areas strictly increase ("gradually increasing diameters").
  for (std::size_t k = 1; k < coil.turns.size(); ++k) {
    EXPECT_GT(coil.turns[k].area(), coil.turns[k - 1].area());
  }
}

TEST(Coil, SpiralRejectsDrcViolations) {
  const DieSpec die{};
  OnChipSpiralSpec narrow{};
  narrow.wire_width = die.min_wire_width / 2.0;
  EXPECT_THROW(make_onchip_spiral(die, narrow), emts::precondition_error);

  OnChipSpiralSpec too_many{};
  too_many.turns = 5000;  // pitch collapses below spacing rule
  EXPECT_THROW(make_onchip_spiral(die, too_many), emts::precondition_error);
}

TEST(Coil, ExternalProbeSitsAbovePackage) {
  const DieSpec die{};
  const ExternalProbeSpec spec{};
  const Coil probe = make_external_probe(die, spec);
  EXPECT_EQ(probe.turns.size(), spec.turns);
  const double min_z = die.sensor_z + die.package_top;
  for (const Segment& s : probe.path) {
    EXPECT_GE(s.a.z, min_z - 1e-12);
  }
}

TEST(Coil, ProbeTurnsShareOneDiameter) {
  const DieSpec die{};
  const Coil probe = make_external_probe(die, ExternalProbeSpec{});
  for (const auto& turn : probe.turns) {
    EXPECT_DOUBLE_EQ(turn.p2, ExternalProbeSpec{}.radius);
  }
}

TEST(Coil, TotalTurnAreaGrowsWithTurnCount) {
  const DieSpec die{};
  OnChipSpiralSpec few{};
  few.turns = 4;
  OnChipSpiralSpec many{};
  many.turns = 16;
  EXPECT_GT(make_onchip_spiral(die, many).total_turn_area(),
            make_onchip_spiral(die, few).total_turn_area());
}

TEST(FieldMap, PeakSitsAboveCurrentLoop) {
  const DieSpec die{};
  // Loop in the lower-left quadrant of the die.
  std::vector<Segment> loop;
  const double z = die.cell_z;
  loop.push_back(Segment{Vec3{2e-4, 2e-4, z}, Vec3{6e-4, 2e-4, z}});
  loop.push_back(Segment{Vec3{6e-4, 2e-4, z}, Vec3{6e-4, 6e-4, z}});
  loop.push_back(Segment{Vec3{6e-4, 6e-4, z}, Vec3{2e-4, 6e-4, z}});
  loop.push_back(Segment{Vec3{2e-4, 6e-4, z}, Vec3{2e-4, 2e-4, z}});

  const auto map = bz_map(loop, 1e-3, die, die.sensor_z, 33, 33);
  // Locate the |Bz| maximum.
  double best = 0.0;
  std::size_t best_ix = 0;
  std::size_t best_iy = 0;
  for (std::size_t iy = 0; iy < map.ny; ++iy) {
    for (std::size_t ix = 0; ix < map.nx; ++ix) {
      if (std::abs(map.at(ix, iy)) > best) {
        best = std::abs(map.at(ix, iy));
        best_ix = ix;
        best_iy = iy;
      }
    }
  }
  const double px = map.x0 + (map.x1 - map.x0) * static_cast<double>(best_ix) / 32.0;
  const double py = map.y0 + (map.y1 - map.y0) * static_cast<double>(best_iy) / 32.0;
  EXPECT_GT(px, 1.5e-4);
  EXPECT_LT(px, 6.5e-4);
  EXPECT_GT(py, 1.5e-4);
  EXPECT_LT(py, 6.5e-4);
  EXPECT_GT(map.max_abs(), 0.0);
}

TEST(FieldMap, RejectsDegenerateGrid) {
  const DieSpec die{};
  EXPECT_THROW(bz_map({}, 1.0, die, die.sensor_z, 1, 8), emts::precondition_error);
}

}  // namespace
}  // namespace emts::em
