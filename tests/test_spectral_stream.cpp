// The incremental spectral pipeline, layer by layer: the analyzer's
// streaming mean-spectrum mode (one real-split FFT per push plus a running
// per-bin sum), the ring's per-slot spectrum cache, the detector's
// stream_observe/stream_finish pair, and the monitor-level equivalence of the
// incremental path against the batch-recompute path over long randomized
// streams — including ring wraparound, alarm re-arm and snapshot/restore cut
// mid-window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "core/ring.hpp"
#include "core/spectral.hpp"
#include "dsp/spectrum.hpp"
#include "util/alloc_counter.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::dsp {
namespace {

std::vector<double> tone(double freq, double fs, std::size_t n, double amplitude) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amplitude * std::sin(2.0 * units::pi * freq * static_cast<double>(i) / fs);
  }
  return out;
}

std::vector<double> noisy_tone(emts::Rng& rng, double freq, double fs, std::size_t n) {
  auto sig = tone(freq, fs, n, 1.0);
  for (double& v : sig) v += rng.gaussian(0.0, 0.5);
  return sig;
}

double peak_amplitude(const std::vector<double>& amplitude) {
  double peak = 0.0;
  for (double a : amplitude) peak = std::max(peak, a);
  return peak;
}

// The real-split transform computes the same spectrum through a half-size
// FFT, so it matches amplitude_spectrum to floating-point rounding (a few
// ULPs per bin), not bitwise.
TEST(SpectrumStream, TransformMatchesAmplitudeSpectrumToRounding) {
  emts::Rng rng{901};
  for (std::size_t n : {64u, 512u, 1000u}) {  // 1000: exercises zero-padding
    std::vector<double> sig(n);
    for (double& v : sig) v = rng.gaussian();
    const Spectrum copied = amplitude_spectrum(sig, 1000.0);

    SpectrumAnalyzer analyzer;
    analyzer.ensure_stream(n, 1000.0);
    std::vector<double> amp;
    analyzer.stream_transform(sig, amp);

    ASSERT_EQ(amp.size(), copied.size()) << "length " << n;
    const double peak = peak_amplitude(copied.amplitude);
    for (std::size_t k = 0; k < copied.size(); ++k) {
      EXPECT_NEAR(amp[k], copied.amplitude[k], 1e-12 * peak) << "n " << n << " bin " << k;
    }
  }
}

TEST(SpectrumStream, PushedMeanMatchesMeanSpectrumToRounding) {
  emts::Rng rng{902};
  std::vector<std::vector<double>> signals;
  for (int t = 0; t < 7; ++t) signals.push_back(noisy_tone(rng, 125.0, 1000.0, 512));
  const Spectrum copied = mean_spectrum(signals, 1000.0);

  SpectrumAnalyzer analyzer;
  analyzer.ensure_stream(512, 1000.0);
  std::vector<double> amp;
  for (const auto& sig : signals) analyzer.stream_push(sig, amp);
  EXPECT_EQ(analyzer.stream_count(), signals.size());
  EXPECT_EQ(analyzer.stream_updates_since_rebuild(), signals.size());
  const Spectrum& streamed = analyzer.stream_mean();

  ASSERT_EQ(streamed.size(), copied.size());
  const double peak = peak_amplitude(copied.amplitude);
  for (std::size_t k = 0; k < copied.size(); ++k) {
    EXPECT_NEAR(streamed.amplitude[k], copied.amplitude[k], 1e-12 * peak) << "bin " << k;
  }
}

// Sliding-window use: retiring the outgoing trace's cached amplitudes and
// pushing the incoming one keeps the mean equal to a fresh accumulation of
// the live window, to rounding; a reset + re-accumulation of the same cached
// vectors (the drift-bounding rebuild) reproduces the sum bit-exactly.
TEST(SpectrumStream, RetireSlidesTheWindowAndRebuildIsBitExact) {
  emts::Rng rng{903};
  constexpr std::size_t kWindow = 4;
  std::vector<std::vector<double>> amps;  // cached per-trace amplitudes

  SpectrumAnalyzer analyzer;
  analyzer.ensure_stream(256, 1000.0);
  for (std::size_t t = 0; t < kWindow + 3; ++t) {
    amps.emplace_back();
    analyzer.stream_push(noisy_tone(rng, 125.0, 1000.0, 256), amps.back());
    if (amps.size() > kWindow) analyzer.stream_retire(amps[amps.size() - kWindow - 1]);
  }
  EXPECT_EQ(analyzer.stream_count(), kWindow);
  // kWindow + 3 pushes and 3 retirements each count as an update.
  EXPECT_EQ(analyzer.stream_updates_since_rebuild(), kWindow + 3 + 3);

  // Fresh accumulation of the live window from the cached amplitudes.
  SpectrumAnalyzer fresh;
  fresh.ensure_stream(256, 1000.0);
  for (std::size_t t = amps.size() - kWindow; t < amps.size(); ++t) {
    fresh.stream_accumulate(amps[t]);
  }
  const std::vector<double> slid = analyzer.stream_mean().amplitude;
  const std::vector<double> rebuilt_mean = fresh.stream_mean().amplitude;
  ASSERT_EQ(slid.size(), rebuilt_mean.size());
  const double peak = peak_amplitude(rebuilt_mean);
  for (std::size_t k = 0; k < slid.size(); ++k) {
    EXPECT_NEAR(slid[k], rebuilt_mean[k], 1e-12 * peak) << "bin " << k;
  }

  // The rebuild path on the sliding analyzer is bit-identical to the fresh
  // accumulation: same values, same order, same arithmetic.
  analyzer.stream_reset();
  for (std::size_t t = amps.size() - kWindow; t < amps.size(); ++t) {
    analyzer.stream_accumulate(amps[t]);
  }
  analyzer.stream_mark_rebuilt();
  EXPECT_EQ(analyzer.stream_updates_since_rebuild(), 0u);
  EXPECT_EQ(analyzer.stream_sum(), fresh.stream_sum());  // bitwise
}

// stream_reset() clears the accumulator but NOT the lifetime update counter —
// a tumbling window that resets every boundary must still hit the rebuild
// cadence eventually.
TEST(SpectrumStream, ResetKeepsTheLifetimeUpdateCounter) {
  SpectrumAnalyzer analyzer;
  analyzer.ensure_stream(128, 1000.0);
  std::vector<double> amp;
  for (int round = 0; round < 3; ++round) {
    analyzer.stream_push(tone(125.0, 1000.0, 128, 1.0), amp);
    analyzer.stream_push(tone(250.0, 1000.0, 128, 1.0), amp);
    analyzer.stream_reset();
    EXPECT_EQ(analyzer.stream_count(), 0u);
  }
  EXPECT_EQ(analyzer.stream_updates_since_rebuild(), 6u);
  analyzer.stream_mark_rebuilt();
  EXPECT_EQ(analyzer.stream_updates_since_rebuild(), 0u);
}

TEST(SpectrumStream, RestoreContinuesBitIdentically) {
  emts::Rng rng{904};
  std::vector<std::vector<double>> signals;
  for (int t = 0; t < 6; ++t) signals.push_back(noisy_tone(rng, 125.0, 1000.0, 256));

  SpectrumAnalyzer uninterrupted;
  uninterrupted.ensure_stream(256, 1000.0);
  std::vector<double> amp;
  for (const auto& sig : signals) uninterrupted.stream_push(sig, amp);

  // Cut after 3 pushes, restore the accumulator verbatim, finish the stream.
  SpectrumAnalyzer first_half;
  first_half.ensure_stream(256, 1000.0);
  for (int t = 0; t < 3; ++t) first_half.stream_push(signals[static_cast<std::size_t>(t)], amp);

  SpectrumAnalyzer restored;
  restored.ensure_stream(256, 1000.0);
  restored.stream_restore(first_half.stream_sum(), first_half.stream_count(),
                          first_half.stream_updates_since_rebuild());
  for (std::size_t t = 3; t < signals.size(); ++t) restored.stream_push(signals[t], amp);

  EXPECT_EQ(restored.stream_count(), uninterrupted.stream_count());
  EXPECT_EQ(restored.stream_updates_since_rebuild(),
            uninterrupted.stream_updates_since_rebuild());
  EXPECT_EQ(restored.stream_sum(), uninterrupted.stream_sum());  // bitwise
}

TEST(SpectrumStream, RejectsMidStreamShapeChange) {
  SpectrumAnalyzer analyzer;
  analyzer.ensure_stream(128, 1000.0);
  std::vector<double> amp;
  analyzer.stream_push(tone(125.0, 1000.0, 128, 1.0), amp);
  // Resizing a non-empty accumulator would silently corrupt the mean.
  EXPECT_THROW(analyzer.ensure_stream(256, 1000.0), emts::precondition_error);
  // Same shape is always fine mid-stream.
  analyzer.ensure_stream(128, 1000.0);
  EXPECT_EQ(analyzer.stream_count(), 1u);
}

}  // namespace
}  // namespace emts::dsp

namespace emts::core {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

Trace golden_trace(emts::Rng& rng) {
  Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

Trace infected_trace(emts::Rng& rng) {
  Trace t = golden_trace(rng);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] += 0.6 * std::sin(2.0 * units::pi * 72e6 * static_cast<double>(i) / kFs) +
            0.3 * std::sin(2.0 * units::pi * 3e6 * static_cast<double>(i) / kFs);
  }
  return t;
}

TraceSet make_set(std::size_t n, bool infected, std::uint64_t seed) {
  emts::Rng rng{seed};
  TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) {
    set.add(infected ? infected_trace(rng) : golden_trace(rng));
  }
  return set;
}

RuntimeMonitor::Options small_options() {
  RuntimeMonitor::Options opt;
  opt.calibration_traces = 16;
  opt.alarm_debounce = 3;
  opt.spectral_window = 8;
  return opt;
}

void expect_reports_equivalent(const SpectralReport& incremental,
                               const SpectralReport& batch, const char* context) {
  ASSERT_EQ(incremental.anomalies.size(), batch.anomalies.size()) << context;
  for (std::size_t a = 0; a < batch.anomalies.size(); ++a) {
    const SpectralAnomaly& lhs = incremental.anomalies[a];
    const SpectralAnomaly& rhs = batch.anomalies[a];
    EXPECT_EQ(lhs.kind, rhs.kind) << context << " anomaly " << a;
    EXPECT_EQ(lhs.frequency_hz, rhs.frequency_hz) << context << " anomaly " << a;
    // Amplitudes ride different FFT factorizations: equal to rounding only.
    EXPECT_NEAR(lhs.ratio, rhs.ratio, 1e-9 * std::max(1.0, std::abs(rhs.ratio)))
        << context << " anomaly " << a;
  }
}

// ---------- TraceRing spectrum cache ----------

TEST(TraceRingSpectrumCache, FollowsSlotsAcrossWraparoundAndClear) {
  TraceRing ring{3};
  EXPECT_FALSE(ring.spectrum_cache_enabled());
  ring.enable_spectrum_cache(4);
  ASSERT_TRUE(ring.spectrum_cache_enabled());
  ring.enable_spectrum_cache(4);  // idempotent for the same bin count

  const Trace trace(16, 0.5);
  for (int t = 0; t < 5; ++t) {  // 5 pushes into 3 slots: wraps around
    ring.push(trace);
    auto& spectrum = ring.newest_spectrum();
    ASSERT_EQ(spectrum.size(), 4u);
    std::fill(spectrum.begin(), spectrum.end(), static_cast<double>(t));
  }
  ASSERT_EQ(ring.size(), 3u);
  // Arrival order survives the wrap: oldest_spectrum(i) tracks oldest(i).
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.oldest_spectrum(i)[0], static_cast<double>(2 + i)) << "entry " << i;
  }

  // clear() keeps the cache storage, exactly like the slot storage: the next
  // push rewinds to slot 0, whose cache still holds push 3's fill value.
  ring.clear();
  EXPECT_TRUE(ring.spectrum_cache_enabled());
  ring.push(trace);
  EXPECT_EQ(ring.newest_spectrum().size(), 4u);
  EXPECT_EQ(ring.newest_spectrum()[0], 3.0);
}

TEST(TraceRingSpectrumCache, GuardsMisuse) {
  TraceRing ring{2};
  EXPECT_THROW(ring.enable_spectrum_cache(0), emts::precondition_error);
  ring.push(Trace(8, 0.0));
  EXPECT_THROW(ring.newest_spectrum(), emts::precondition_error);  // cache off
  ring.enable_spectrum_cache(4);
  EXPECT_THROW(ring.oldest_spectrum(1), emts::precondition_error);  // out of range
}

// ---------- SpectralDetector stream path ----------

TEST(SpectralDetectorStream, StreamFinishMatchesAnalyzeReusing) {
  const auto detector = SpectralDetector::calibrate(make_set(16, false, 910));
  const TraceSet suspect = make_set(8, true, 911);

  auto batch_scratch = detector.make_scratch();
  TraceRing batch_ring{8};
  for (const auto& trace : suspect.traces) batch_ring.push(trace);
  const SpectralReport batch = detector.analyze_reusing(batch_ring, kFs, batch_scratch);

  auto stream_scratch = detector.make_scratch();
  TraceRing stream_ring{8};
  for (const auto& trace : suspect.traces) {
    stream_ring.push(trace);
    detector.stream_observe(stream_ring, kFs, stream_scratch);
  }
  bool rebuilt = false;
  const SpectralReport& streamed =
      detector.stream_finish(stream_ring, kFs, stream_scratch, 4096, rebuilt);
  EXPECT_FALSE(rebuilt);  // 8 updates, cadence 4096
  EXPECT_TRUE(streamed.anomalous());
  expect_reports_equivalent(streamed, batch, "infected window");

  // Cadence 1 forces the drift rebuild; the report must not move a bit
  // relative to the non-rebuilt finish on the same accumulator state.
  auto rebuild_scratch = detector.make_scratch();
  TraceRing rebuild_ring{8};
  for (const auto& trace : suspect.traces) {
    rebuild_ring.push(trace);
    detector.stream_observe(rebuild_ring, kFs, rebuild_scratch);
  }
  const SpectralReport& rebuilt_report =
      detector.stream_finish(rebuild_ring, kFs, rebuild_scratch, 1, rebuilt);
  EXPECT_TRUE(rebuilt);
  EXPECT_EQ(rebuild_scratch.analyzer.stream_updates_since_rebuild(), 0u);
  ASSERT_EQ(rebuilt_report.anomalies.size(), streamed.anomalies.size());
  for (std::size_t a = 0; a < streamed.anomalies.size(); ++a) {
    EXPECT_EQ(rebuilt_report.anomalies[a].ratio, streamed.anomalies[a].ratio)
        << "anomaly " << a;  // bitwise: rebuild re-sums the same cached values
  }
}

// ---------- RuntimeMonitor: incremental vs batch over long streams ----------

// One long randomized stream pushed through an incremental monitor and a
// batch-recompute monitor in lockstep: every state transition, alarm latch,
// acknowledge re-arm and spectral verdict must coincide, with spectral ratios
// equal to rounding. Covers dozens of window boundaries, ring reuse and both
// anomaly kinds.
TEST(RuntimeMonitorIncremental, LongRandomizedStreamMatchesBatchPath) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 920));
  RuntimeMonitor::Options batch_options = small_options();
  batch_options.incremental_spectral = false;
  RuntimeMonitor incremental{kFs, evaluator, small_options()};
  RuntimeMonitor batch{kFs, evaluator, batch_options};

  emts::Rng stream_rng{921};
  emts::Rng trace_rng{922};
  for (int i = 0; i < 240; ++i) {
    // Randomized regime switches: mostly golden with infected bursts.
    const bool infected = stream_rng.uniform() < 0.18;
    const Trace t = infected ? infected_trace(trace_rng) : golden_trace(trace_rng);
    const MonitorState incremental_state = incremental.push(t);
    const MonitorState batch_state = batch.push(t);
    ASSERT_EQ(incremental_state, batch_state) << "push " << i;
    ASSERT_EQ(incremental.last_score(), batch.last_score()) << "push " << i;

    if (incremental_state == MonitorState::kAlarm) {
      ASSERT_EQ(incremental.last_spectral().has_value(), batch.last_spectral().has_value());
      incremental.acknowledge_alarm();
      batch.acknowledge_alarm();
    }
    if (incremental.last_spectral().has_value()) {
      ASSERT_TRUE(batch.last_spectral().has_value()) << "push " << i;
      expect_reports_equivalent(*incremental.last_spectral(), *batch.last_spectral(),
                                "windowed report");
    }
  }

  const MonitorStats& istats = incremental.stats();
  const MonitorStats& bstats = batch.stats();
  EXPECT_GE(istats.spectral_passes, 25u);  // dozens of window boundaries ran
  EXPECT_EQ(istats.spectral_passes, bstats.spectral_passes);
  EXPECT_EQ(istats.windowed_anomalies, bstats.windowed_anomalies);
  EXPECT_EQ(istats.alarms_latched, bstats.alarms_latched);
  EXPECT_GT(istats.alarms_latched, 0u);  // the bursts actually latched
  // Path accounting: every scored push fed the accumulator; the batch path
  // recomputed every window and never updated incrementally.
  EXPECT_EQ(istats.spectral_incremental_updates, istats.scored_captures);
  EXPECT_EQ(bstats.spectral_incremental_updates, 0u);
  EXPECT_EQ(bstats.spectral_recomputes, bstats.spectral_passes);
}

// A tight rebuild cadence must not move any score: in tumbling-window mode
// the rebuild re-sums exactly the values the incremental path just added, so
// the stream is bit-identical at every cadence.
TEST(RuntimeMonitorIncremental, RebuildCadenceIsScoreNeutral) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 930));
  RuntimeMonitor::Options eager = small_options();
  eager.spectral_rebuild_every = 1;  // rebuild at every window boundary
  RuntimeMonitor relaxed{kFs, evaluator, small_options()};
  RuntimeMonitor rebuilding{kFs, evaluator, eager};

  const TraceSet stream = make_set(40, false, 931);
  for (const auto& trace : stream.traces) {
    relaxed.push(trace);
    rebuilding.push(trace);
    ASSERT_EQ(rebuilding.state(), relaxed.state());
    ASSERT_EQ(rebuilding.last_score(), relaxed.last_score());
  }
  EXPECT_EQ(rebuilding.stats().spectral_passes, relaxed.stats().spectral_passes);
  // Cadence 1: every boundary rebuilt. Default cadence: none reached 4096.
  EXPECT_EQ(rebuilding.stats().spectral_recomputes, rebuilding.stats().spectral_passes);
  EXPECT_EQ(relaxed.stats().spectral_recomputes, 0u);
}

// Export mid-window (a partially accumulated spectral sum in flight), restore
// into a fresh monitor, and finish the stream in both worlds: the restored
// accumulator continues bit-identically to the uninterrupted one.
TEST(RuntimeMonitorIncremental, SnapshotRestoreMidWindowContinuesBitIdentically) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 940));
  RuntimeMonitor reference{kFs, evaluator, small_options()};
  RuntimeMonitor exporter{kFs, evaluator, small_options()};

  TraceSet stream = make_set(10, false, 941);
  for (auto& t : make_set(9, true, 942).traces) stream.add(std::move(t));
  for (auto& t : make_set(10, false, 943).traces) stream.add(std::move(t));

  for (const auto& trace : stream.traces) {
    reference.push(trace);
    if (reference.state() == MonitorState::kAlarm) reference.acknowledge_alarm();
  }

  // Cut at trace 15: the alarm latched (and was acknowledged, clearing the
  // window) at trace 12, so the cut lands two traces into a fresh window —
  // a partially accumulated spectral sum is in flight.
  const std::size_t cut = 15;
  for (std::size_t i = 0; i < cut; ++i) {
    exporter.push(stream.traces[i]);
    if (exporter.state() == MonitorState::kAlarm) exporter.acknowledge_alarm();
  }
  const MonitorStateImage image = exporter.export_state();
  ASSERT_GT(image.window.size(), 0u);
  ASSERT_LT(image.window.size(), 8u);  // genuinely mid-window
  EXPECT_EQ(image.spectral_count, image.window.size());
  ASSERT_FALSE(image.spectral_sum.empty());

  RuntimeMonitor restored{kFs, evaluator, small_options()};
  restored.restore_state(image);
  for (std::size_t i = cut; i < stream.size(); ++i) {
    restored.push(stream.traces[i]);
    if (restored.state() == MonitorState::kAlarm) restored.acknowledge_alarm();
  }

  EXPECT_EQ(restored.state(), reference.state());
  EXPECT_EQ(restored.last_score(), reference.last_score());  // bitwise
  EXPECT_EQ(restored.stats().spectral_passes, reference.stats().spectral_passes);
  EXPECT_EQ(restored.stats().windowed_anomalies, reference.stats().windowed_anomalies);
  EXPECT_EQ(restored.stats().alarms_latched, reference.stats().alarms_latched);
  EXPECT_EQ(restored.stats().spectral_incremental_updates,
            reference.stats().spectral_incremental_updates);
  ASSERT_EQ(restored.last_spectral().has_value(), reference.last_spectral().has_value());
  if (restored.last_spectral().has_value()) {
    const auto& lhs = restored.last_spectral()->anomalies;
    const auto& rhs = reference.last_spectral()->anomalies;
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t a = 0; a < rhs.size(); ++a) {
      EXPECT_EQ(lhs[a].ratio, rhs[a].ratio) << "anomaly " << a;  // bitwise
    }
  }
}

// Restore must also refuse an image whose incremental options disagree with
// the target's — a different rebuild cadence would silently desynchronize the
// recompute counter from the exporter's stream.
TEST(RuntimeMonitorIncremental, RestoreRefusesMismatchedIncrementalOptions) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 950));
  RuntimeMonitor exporter{kFs, evaluator, small_options()};
  emts::Rng rng{951};
  exporter.push(golden_trace(rng));
  const MonitorStateImage image = exporter.export_state();

  RuntimeMonitor::Options batch_options = small_options();
  batch_options.incremental_spectral = false;
  RuntimeMonitor batch_target{kFs, evaluator, batch_options};
  EXPECT_THROW(batch_target.restore_state(image), emts::precondition_error);

  RuntimeMonitor::Options cadence_options = small_options();
  cadence_options.spectral_rebuild_every = 7;
  RuntimeMonitor cadence_target{kFs, evaluator, cadence_options};
  EXPECT_THROW(cadence_target.restore_state(image), emts::precondition_error);
}

// The incremental path inherits the zero-allocation contract: after warm-up,
// a push (FFT + accumulate + cached-spectrum write) allocates nothing, across
// window boundaries and drift rebuilds alike.
TEST(RuntimeMonitorIncremental, SteadyStatePushStaysAllocationFree) {
  if (!util::alloc::counting_active()) {
    GTEST_SKIP() << "allocation hooks disabled in this build (sanitizer)";
  }
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 960));
  RuntimeMonitor::Options opt = small_options();
  opt.spectral_rebuild_every = 8;  // a rebuild lands inside the measured span
  RuntimeMonitor monitor{kFs, evaluator, opt};
  const TraceSet stream = make_set(16, false, 961);

  for (int round = 0; round < 2; ++round) {
    for (const auto& trace : stream.traces) monitor.push(trace);
  }

  const auto before = util::alloc::thread_counts();
  for (const auto& trace : stream.traces) monitor.push(trace);
  const auto after = util::alloc::thread_counts();
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "incremental push allocated " << (after.bytes - before.bytes) << " bytes";
  EXPECT_GT(monitor.stats().spectral_recomputes, 0u);  // the rebuild did run
}

TEST(RuntimeMonitorIncremental, RejectsZeroRebuildCadence) {
  RuntimeMonitor::Options bad = small_options();
  bad.spectral_rebuild_every = 0;
  EXPECT_THROW((RuntimeMonitor{kFs, bad}), emts::precondition_error);
}

}  // namespace
}  // namespace emts::core
