#include "dsp/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::dsp {
namespace {

TEST(MovingAverage, ConstantSignalUnchanged) {
  const std::vector<double> sig(50, 3.0);
  const auto out = moving_average(sig, 5);
  for (double v : out) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<double> sig{1, -2, 3, 7};
  const auto out = moving_average(sig, 1);
  for (std::size_t i = 0; i < sig.size(); ++i) EXPECT_DOUBLE_EQ(out[i], sig[i]);
}

TEST(MovingAverage, InteriorValuesAreBlockMeans) {
  const std::vector<double> sig{0, 3, 6, 9, 12};
  const auto out = moving_average(sig, 3);
  EXPECT_DOUBLE_EQ(out[2], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  // Edge uses the truncated window.
  EXPECT_DOUBLE_EQ(out[0], 1.5);
}

TEST(MovingAverage, ReducesNoiseVariance) {
  emts::Rng rng{8};
  std::vector<double> sig(4096);
  for (double& v : sig) v = rng.gaussian();
  const auto smooth = moving_average(sig, 9);
  double var_in = 0.0;
  double var_out = 0.0;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    var_in += sig[i] * sig[i];
    var_out += smooth[i] * smooth[i];
  }
  EXPECT_LT(var_out, var_in / 4.0);
}

TEST(MovingAverage, RejectsEvenWindow) {
  EXPECT_THROW(moving_average({1, 2, 3}, 2), emts::precondition_error);
}

TEST(MovingAverage, RejectsEmptySignal) {
  EXPECT_THROW(moving_average({}, 3), emts::precondition_error);
}

TEST(OnePoleLowPass, PassesDc) {
  OnePoleLowPass lp{10.0, 1000.0};
  double y = 0.0;
  for (int i = 0; i < 5000; ++i) y = lp.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(OnePoleLowPass, AttenuatesAboveCutoff) {
  const double fs = 100e3;
  const double fc = 1e3;
  OnePoleLowPass lp{fc, fs};
  // Tone at 10x cutoff should come out ~10x smaller (-20 dB/decade).
  std::vector<double> sig(8192);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = std::sin(2.0 * units::pi * 10.0 * fc * static_cast<double>(i) / fs);
  }
  const auto out = lp.process(sig);
  double peak = 0.0;
  for (std::size_t i = 4096; i < out.size(); ++i) peak = std::max(peak, std::abs(out[i]));
  EXPECT_LT(peak, 0.2);
  EXPECT_GT(peak, 0.02);
}

TEST(OnePoleLowPass, MinusThreeDbAtCutoff) {
  const double fs = 1e6;
  const double fc = 10e3;
  OnePoleLowPass lp{fc, fs};
  std::vector<double> sig(1 << 16);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = std::sin(2.0 * units::pi * fc * static_cast<double>(i) / fs);
  }
  const auto out = lp.process(sig);
  double peak = 0.0;
  for (std::size_t i = sig.size() / 2; i < out.size(); ++i) peak = std::max(peak, std::abs(out[i]));
  EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 0.03);
}

TEST(OnePoleLowPass, ResetClearsState) {
  OnePoleLowPass lp{100.0, 10e3};
  for (int i = 0; i < 100; ++i) lp.step(10.0);
  lp.reset();
  EXPECT_NEAR(lp.step(0.0), 0.0, 1e-12);
}

TEST(OnePoleLowPass, RejectsNonPositiveParameters) {
  EXPECT_THROW(OnePoleLowPass(0.0, 100.0), emts::precondition_error);
  EXPECT_THROW(OnePoleLowPass(10.0, 0.0), emts::precondition_error);
}

TEST(Differentiate, RampGivesConstantSlope) {
  const double fs = 100.0;
  std::vector<double> ramp(50);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = 2.0 * static_cast<double>(i) / fs;
  const auto d = differentiate(ramp, fs);
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_NEAR(d[i], 2.0, 1e-9);
  EXPECT_NEAR(d[0], 2.0, 1e-9);  // first sample copies the second
}

TEST(Differentiate, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(differentiate({}, 1.0).empty());
}

TEST(IntegrateDifferentiate, RoundTripRecoversSmoothSignal) {
  const double fs = 10e3;
  std::vector<double> sig(2048);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = std::sin(2.0 * units::pi * 50.0 * static_cast<double>(i) / fs);
  }
  const auto back = differentiate(integrate(sig, fs), fs);
  for (std::size_t i = 2; i < sig.size(); ++i) {
    EXPECT_NEAR(back[i], 0.5 * (sig[i] + sig[i - 1]), 0.01);
  }
}

TEST(Integrate, ConstantGivesRamp) {
  const double fs = 10.0;
  const std::vector<double> sig(11, 2.0);
  const auto out = integrate(sig, fs);
  EXPECT_NEAR(out.back(), 2.0, 1e-9);  // 2.0 * 1 second
}

}  // namespace
}  // namespace emts::dsp
