#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "util/alloc_counter.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::core {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

Trace golden_trace(emts::Rng& rng) {
  Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

Trace infected_trace(emts::Rng& rng) {
  Trace t = golden_trace(rng);
  for (std::size_t i = 0; i < kLen; ++i) {
    // A fast tone (spectral signature) plus a slow component that survives
    // the preprocessor's 16x decimation (distance signature).
    t[i] += 0.6 * std::sin(2.0 * units::pi * 72e6 * static_cast<double>(i) / kFs) +
            0.3 * std::sin(2.0 * units::pi * 3e6 * static_cast<double>(i) / kFs);
  }
  return t;
}

RuntimeMonitor::Options small_options() {
  RuntimeMonitor::Options opt;
  opt.calibration_traces = 16;
  opt.alarm_debounce = 3;
  opt.spectral_window = 8;
  return opt;
}

// ---------- TrustEvaluator ----------

TraceSet make_set(std::size_t n, bool infected, std::uint64_t seed) {
  emts::Rng rng{seed};
  TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) {
    set.add(infected ? infected_trace(rng) : golden_trace(rng));
  }
  return set;
}

TEST(TrustEvaluator, GoldenBatchIsTrusted) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 1));
  const auto report = eval.evaluate(make_set(20, false, 2));
  EXPECT_EQ(report.verdict, Verdict::kTrusted);
  EXPECT_LT(report.anomalous_fraction, 0.2);
  EXPECT_FALSE(report.spectral.anomalous());
}

TEST(TrustEvaluator, InfectedBatchIsCompromised) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 3));
  const auto report = eval.evaluate(make_set(20, true, 4));
  // Both stages fire: distance and new spectral spot.
  EXPECT_EQ(report.verdict, Verdict::kCompromised);
  EXPECT_GT(report.anomalous_fraction, 0.9);
  EXPECT_TRUE(report.spectral.anomalous());
  EXPECT_GT(report.mean_distance, report.threshold);
}

TEST(TrustEvaluator, SummaryMentionsVerdict) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 5));
  const auto report = eval.evaluate(make_set(10, true, 6));
  EXPECT_NE(report.summary().find(verdict_label(report.verdict)), std::string::npos);
}

TEST(TrustEvaluator, RejectsBadAlarmFraction) {
  TrustEvaluator::Options opt;
  opt.anomalous_fraction_alarm = 0.0;
  EXPECT_THROW(TrustEvaluator::calibrate(make_set(10, false, 7), opt),
               emts::precondition_error);
}

TEST(VerdictLabels, AreDistinct) {
  EXPECT_STRNE(verdict_label(Verdict::kTrusted), verdict_label(Verdict::kSuspicious));
  EXPECT_STRNE(verdict_label(Verdict::kSuspicious), verdict_label(Verdict::kCompromised));
}

// ---------- RuntimeMonitor ----------

TEST(RuntimeMonitor, CalibratesThenMonitors) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{10};
  EXPECT_EQ(monitor.state(), MonitorState::kCalibrating);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(monitor.push(golden_trace(rng)), MonitorState::kCalibrating);
  }
  EXPECT_EQ(monitor.push(golden_trace(rng)), MonitorState::kMonitoring);
  EXPECT_NE(monitor.evaluator(), nullptr);
}

TEST(RuntimeMonitor, StaysCalmOnGoldenStream) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{11};
  for (int i = 0; i < 60; ++i) monitor.push(golden_trace(rng));
  EXPECT_NE(monitor.state(), MonitorState::kAlarm);
  EXPECT_EQ(monitor.traces_seen(), 60u);
}

TEST(RuntimeMonitor, AlarmsAfterDebouncedAnomalies) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{12};
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  // The Trojan activates: alarm after exactly `debounce` anomalous captures.
  monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
}

TEST(RuntimeMonitor, SingleGlitchDoesNotAlarm) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{13};
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  monitor.push(infected_trace(rng));  // one-off glitch
  for (int i = 0; i < 10; ++i) monitor.push(golden_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
}

TEST(RuntimeMonitor, AlarmCallbackFiresOnce) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{14};
  int fired = 0;
  monitor.on_alarm([&](const TrustReport& report) {
    ++fired;
    EXPECT_EQ(report.verdict, Verdict::kCompromised);
  });
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  for (int i = 0; i < 8; ++i) monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
  EXPECT_EQ(fired, 1);
}

TEST(RuntimeMonitor, AcknowledgeResumesMonitoring) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{15};
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  for (int i = 0; i < 5; ++i) monitor.push(infected_trace(rng));
  ASSERT_EQ(monitor.state(), MonitorState::kAlarm);
  monitor.acknowledge_alarm();
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  // Re-alarms if the Trojan persists.
  for (int i = 0; i < 5; ++i) monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
}

TEST(RuntimeMonitor, AcknowledgeWithoutAlarmRejected) {
  RuntimeMonitor monitor{kFs, small_options()};
  EXPECT_THROW(monitor.acknowledge_alarm(), emts::precondition_error);
}

TEST(RuntimeMonitor, LastScoreTracksMostRecentCapture) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{16};
  for (int i = 0; i < 16; ++i) monitor.push(golden_trace(rng));
  EXPECT_FALSE(monitor.last_score().has_value());  // still calibrating at 16th
  monitor.push(golden_trace(rng));
  ASSERT_TRUE(monitor.last_score().has_value());
  const double golden_score = *monitor.last_score();
  monitor.push(infected_trace(rng));
  EXPECT_GT(*monitor.last_score(), golden_score);
}

TEST(RuntimeMonitor, RejectsBadOptions) {
  RuntimeMonitor::Options bad = small_options();
  bad.calibration_traces = 2;
  EXPECT_THROW((RuntimeMonitor{kFs, bad}), emts::precondition_error);
  bad = small_options();
  bad.alarm_debounce = 0;
  EXPECT_THROW((RuntimeMonitor{kFs, bad}), emts::precondition_error);
  EXPECT_THROW((RuntimeMonitor{0.0, small_options()}), emts::precondition_error);
}

TEST(RuntimeMonitor, PreFittedStartsMonitoringImmediately) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 17));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  EXPECT_EQ(monitor.traces_seen(), 0u);  // cold start: zero calibration captures
  ASSERT_NE(monitor.evaluator(), nullptr);

  // First push is already scored, not swallowed by calibration.
  emts::Rng rng{18};
  monitor.push(golden_trace(rng));
  EXPECT_TRUE(monitor.last_score().has_value());
}

TEST(RuntimeMonitor, PreFittedAlarmsOnInfectedStream) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 19));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  emts::Rng rng{20};
  for (int i = 0; i < 8 && monitor.state() != MonitorState::kAlarm; ++i) {
    monitor.push(infected_trace(rng));
  }
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
}

TEST(RuntimeMonitor, PreFittedRejectsSampleRateMismatch) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 21));
  EXPECT_THROW((RuntimeMonitor{2.0 * kFs, evaluator}), emts::precondition_error);
}

// Regression: a latched alarm leaves stale state behind — a partially
// filled spectral window of infected captures, the last score and the last
// spectral report. acknowledge_alarm() must reset all of it; with
// alarm_debounce = 1 a single leaked anomaly would instantly re-latch on a
// perfectly clean stream.
TEST(RuntimeMonitor, AcknowledgeFullyRearmsTheLoop) {
  RuntimeMonitor::Options opt = small_options();
  opt.alarm_debounce = 1;  // the least forgiving re-arm scenario
  RuntimeMonitor monitor{kFs, opt};
  emts::Rng rng{30};
  for (int i = 0; i < 16; ++i) monitor.push(golden_trace(rng));
  ASSERT_EQ(monitor.state(), MonitorState::kMonitoring);

  for (int i = 0; i < 8 && monitor.state() != MonitorState::kAlarm; ++i) {
    monitor.push(infected_trace(rng));
  }
  ASSERT_EQ(monitor.state(), MonitorState::kAlarm);
  // The Trojan keeps toggling while the operator investigates: infected
  // captures pile into the partial spectral window.
  for (int i = 0; i < 5; ++i) monitor.push(infected_trace(rng));
  ASSERT_EQ(monitor.state(), MonitorState::kAlarm);

  monitor.acknowledge_alarm();
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  EXPECT_FALSE(monitor.last_score().has_value());
  EXPECT_FALSE(monitor.last_spectral().has_value());
  EXPECT_EQ(monitor.stats().alarms_latched, 1u);
  EXPECT_EQ(monitor.stats().alarms_acknowledged, 1u);

  // A clean stream spanning several spectral windows must never re-latch.
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(monitor.push(golden_trace(rng)), MonitorState::kMonitoring) << "push " << i;
  }
  EXPECT_EQ(monitor.stats().alarms_latched, 1u);
}

TEST(RuntimeMonitor, StatsAndEventsTrackTheStream) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{31};
  for (int i = 0; i < 32; ++i) monitor.push(golden_trace(rng));

  const MonitorStats& stats = monitor.stats();
  EXPECT_EQ(stats.traces_ingested, 32u);
  EXPECT_EQ(stats.calibration_captures, 16u);
  EXPECT_EQ(stats.scored_captures, 16u);
  EXPECT_EQ(stats.spectral_passes, 2u);  // 16 monitored pushes / window of 8
  EXPECT_EQ(stats.alarms_latched, 0u);
  EXPECT_EQ(stats.events_dropped, 0u);
  EXPECT_EQ(stats.push_latency.count(), 32u);
  EXPECT_EQ(stats.spectral_latency.count(), 2u);
  EXPECT_GE(stats.push_latency.max_ns(), stats.push_latency.min_ns());

  const auto events = monitor.drain_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, MonitorEventKind::kCalibrated);
  EXPECT_EQ(events.front().trace_index, 16u);
  EXPECT_DOUBLE_EQ(events.front().value, 16.0);
  std::size_t spectral_events = 0;
  for (const auto& e : events) {
    if (e.kind == MonitorEventKind::kSpectralPass) {
      ++spectral_events;
      EXPECT_DOUBLE_EQ(e.value, 8.0);  // full window analyzed
    }
  }
  EXPECT_EQ(spectral_events, 2u);
  // Draining empties the log.
  EXPECT_TRUE(monitor.drain_events().empty());
}

TEST(RuntimeMonitor, EventLogOverflowDropsTheOldest) {
  RuntimeMonitor::Options opt = small_options();
  opt.event_log_capacity = 1;
  RuntimeMonitor monitor{kFs, opt};
  emts::Rng rng{32};
  for (int i = 0; i < 32; ++i) monitor.push(golden_trace(rng));
  // Calibrated + two spectral passes competed for one slot.
  EXPECT_EQ(monitor.stats().events_dropped, 2u);
  const auto events = monitor.drain_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().kind, MonitorEventKind::kSpectralPass);
}

TEST(RuntimeMonitor, PushBatchMatchesPerTracePushExactly) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 33));
  RuntimeMonitor one_by_one{kFs, evaluator, small_options()};
  RuntimeMonitor batched{kFs, evaluator, small_options()};

  TraceSet stream = make_set(10, false, 34);
  for (auto& t : make_set(6, true, 35).traces) stream.add(std::move(t));
  for (auto& t : make_set(8, false, 36).traces) stream.add(std::move(t));

  for (const auto& trace : stream.traces) one_by_one.push(trace);
  batched.push_batch(stream);

  EXPECT_EQ(batched.state(), one_by_one.state());
  EXPECT_EQ(batched.traces_seen(), one_by_one.traces_seen());
  ASSERT_EQ(batched.last_score().has_value(), one_by_one.last_score().has_value());
  if (batched.last_score().has_value()) {
    EXPECT_EQ(*batched.last_score(), *one_by_one.last_score());  // bit-identical
  }
  EXPECT_EQ(batched.last_spectral().has_value(), one_by_one.last_spectral().has_value());
  EXPECT_EQ(batched.stats().scored_captures, one_by_one.stats().scored_captures);
  EXPECT_EQ(batched.stats().per_trace_anomalies, one_by_one.stats().per_trace_anomalies);
  EXPECT_EQ(batched.stats().spectral_passes, one_by_one.stats().spectral_passes);
  EXPECT_EQ(batched.stats().windowed_anomalies, one_by_one.stats().windowed_anomalies);
  EXPECT_EQ(batched.stats().alarms_latched, one_by_one.stats().alarms_latched);
}

TEST(RuntimeMonitor, PushBatchRejectsSampleRateMismatch) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 37));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  TraceSet batch = make_set(4, false, 38);
  batch.sample_rate = 2.0 * kFs;
  EXPECT_THROW(monitor.push_batch(batch), emts::precondition_error);
  EXPECT_THROW(monitor.push_batch(TraceSet{}), emts::precondition_error);
}

TEST(TrustEvaluator, ScoreBatchMatchesPlainScoresBitwise) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 40));
  TraceSet batch = make_set(6, false, 41);
  for (auto& t : make_set(6, true, 42).traces) batch.add(std::move(t));

  ScoreScratch scratch;
  std::vector<std::vector<double>> scores;
  eval.score_batch(batch, scratch, scores);
  ASSERT_EQ(scores.size(), eval.detectors().size());
  for (std::size_t d = 0; d < scores.size(); ++d) {
    const auto& detector = *eval.detectors()[d];
    if (detector.windowed()) {
      EXPECT_TRUE(scores[d].empty()) << detector.name();
      continue;
    }
    ASSERT_EQ(scores[d].size(), batch.size()) << detector.name();
    for (std::size_t t = 0; t < batch.size(); ++t) {
      EXPECT_EQ(scores[d][t], detector.score(batch.traces[t]))
          << detector.name() << " trace " << t;
    }
  }

  // Reusing the scratch and score rows must reproduce the same values.
  const auto first = scores;
  eval.score_batch(batch, scratch, scores);
  EXPECT_EQ(scores, first);
}

TEST(RuntimeMonitor, SteadyStatePushIsAllocationFree) {
  if (!util::alloc::counting_active()) {
    GTEST_SKIP() << "allocation hooks disabled in this build (sanitizer)";
  }
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 43));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  const TraceSet stream = make_set(16, false, 44);

  // Warm-up: size every scratch buffer, ring slot and analyzer plan across
  // multiple full spectral windows.
  for (int round = 0; round < 2; ++round) {
    for (const auto& trace : stream.traces) monitor.push(trace);
  }

  const auto before = util::alloc::thread_counts();
  for (const auto& trace : stream.traces) monitor.push(trace);
  const auto after = util::alloc::thread_counts();
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "steady-state push allocated " << (after.bytes - before.bytes) << " bytes";
}

// The batch-recompute spectral path (incremental_spectral = false) keeps the
// same contract: its window pass runs through the cached analyzer and scratch
// buffers, so steady-state pushes allocate nothing either.
TEST(RuntimeMonitor, BatchSpectralSteadyStatePushIsAllocationFree) {
  if (!util::alloc::counting_active()) {
    GTEST_SKIP() << "allocation hooks disabled in this build (sanitizer)";
  }
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 45));
  RuntimeMonitor::Options opt = small_options();
  opt.incremental_spectral = false;
  RuntimeMonitor monitor{kFs, evaluator, opt};
  const TraceSet stream = make_set(16, false, 46);

  for (int round = 0; round < 2; ++round) {
    for (const auto& trace : stream.traces) monitor.push(trace);
  }

  const auto before = util::alloc::thread_counts();
  for (const auto& trace : stream.traces) monitor.push(trace);
  const auto after = util::alloc::thread_counts();
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "steady-state batch push allocated " << (after.bytes - before.bytes) << " bytes";
}

// ---------- movability (fleet sessions relocate monitors) ----------

static_assert(std::is_nothrow_move_constructible_v<RuntimeMonitor>,
              "fleet sessions relocate monitors; moves must not throw");
static_assert(std::is_nothrow_move_assignable_v<RuntimeMonitor>);
static_assert(!std::is_copy_constructible_v<RuntimeMonitor>,
              "a monitor is one stream's identity; copying must not compile");
static_assert(std::is_move_constructible_v<TrustEvaluator>);
static_assert(std::is_move_assignable_v<TrustEvaluator>);

// Regression for shard-local session storage: every internal buffer (ring
// slots, score scratch, cached FFT plan, event ring) must survive relocation
// with no dangling self-references — a moved monitor continues the stream
// with bit-identical scores, stats and events.
TEST(RuntimeMonitor, MoveMidStreamScoresBitIdentically) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 50));
  RuntimeMonitor control{kFs, evaluator, small_options()};
  RuntimeMonitor original{kFs, evaluator, small_options()};

  TraceSet stream = make_set(12, false, 51);
  for (auto& t : make_set(6, true, 52).traces) stream.add(std::move(t));
  for (auto& t : make_set(10, false, 53).traces) stream.add(std::move(t));

  for (const auto& trace : stream.traces) control.push(trace);

  // Push half the stream, relocate twice (construction + assignment), finish.
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) original.push(stream.traces[i]);
  RuntimeMonitor moved{std::move(original)};
  RuntimeMonitor target{kFs, TrustEvaluator::calibrate(make_set(30, false, 54)),
                        small_options()};
  target = std::move(moved);
  for (std::size_t i = half; i < stream.size(); ++i) target.push(stream.traces[i]);

  EXPECT_EQ(target.state(), control.state());
  EXPECT_EQ(target.traces_seen(), control.traces_seen());
  EXPECT_EQ(target.expected_trace_length(), control.expected_trace_length());
  ASSERT_EQ(target.last_score().has_value(), control.last_score().has_value());
  if (target.last_score().has_value()) {
    EXPECT_EQ(*target.last_score(), *control.last_score());  // bit-identical
  }
  EXPECT_EQ(target.stats().scored_captures, control.stats().scored_captures);
  EXPECT_EQ(target.stats().per_trace_anomalies, control.stats().per_trace_anomalies);
  EXPECT_EQ(target.stats().spectral_passes, control.stats().spectral_passes);
  EXPECT_EQ(target.stats().windowed_anomalies, control.stats().windowed_anomalies);
  EXPECT_EQ(target.stats().alarms_latched, control.stats().alarms_latched);

  auto target_events = target.drain_events();
  auto control_events = control.drain_events();
  ASSERT_EQ(target_events.size(), control_events.size());
  for (std::size_t i = 0; i < target_events.size(); ++i) {
    EXPECT_EQ(target_events[i].kind, control_events[i].kind) << i;
    EXPECT_EQ(target_events[i].trace_index, control_events[i].trace_index) << i;
    EXPECT_EQ(target_events[i].value, control_events[i].value) << i;
  }
}

// ---------- input gate (shape / finiteness rejection) ----------

TEST(RuntimeMonitor, RejectsShapeMismatchWithoutPoisoningTheStack) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 60));
  RuntimeMonitor control{kFs, evaluator, small_options()};
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  const TraceSet stream = make_set(10, false, 61);

  for (const auto& trace : stream.traces) control.push(trace);

  // Interleave wrong-length traces; every good trace must score exactly as
  // if the bad ones were never pushed.
  Trace truncated(kLen / 2, 0.01);
  Trace extended(kLen + 7, 0.01);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    monitor.push(stream.traces[i]);
    if (i % 3 == 0) {
      EXPECT_EQ(monitor.push(truncated), monitor.state());
    }
    if (i % 4 == 0) monitor.push(extended);
  }

  EXPECT_EQ(monitor.expected_trace_length(), kLen);
  EXPECT_GT(monitor.stats().traces_rejected, 0u);
  EXPECT_EQ(monitor.state(), control.state());
  ASSERT_TRUE(monitor.last_score().has_value());
  EXPECT_EQ(*monitor.last_score(), *control.last_score());  // bit-identical
  EXPECT_EQ(monitor.stats().scored_captures, control.stats().scored_captures);
  EXPECT_EQ(monitor.stats().spectral_passes, control.stats().spectral_passes);
  EXPECT_EQ(monitor.stats().traces_ingested,
            control.stats().traces_ingested + monitor.stats().traces_rejected);

  std::size_t shape_events = 0;
  for (const auto& e : monitor.drain_events()) {
    if (e.kind == MonitorEventKind::kTraceRejectedShape) {
      ++shape_events;
      EXPECT_TRUE(e.value == static_cast<double>(truncated.size()) ||
                  e.value == static_cast<double>(extended.size()));
    }
  }
  EXPECT_EQ(shape_events, monitor.stats().traces_rejected);
}

TEST(RuntimeMonitor, RejectsShapeMismatchWhileCalibrating) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{62};
  monitor.push(golden_trace(rng));
  // Previously this ragged capture would flow into the calibration set and
  // throw from deep inside TraceSet::add; now it is a structured rejection.
  Trace ragged(kLen + 1, 0.01);
  EXPECT_EQ(monitor.push(ragged), MonitorState::kCalibrating);
  EXPECT_EQ(monitor.stats().traces_rejected, 1u);
  EXPECT_EQ(monitor.stats().calibration_captures, 1u);
  // Calibration still completes on the good stream.
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
}

TEST(RuntimeMonitor, PreFittedVetsTheFirstCaptureShape) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 63));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  // A first capture the fitted stack cannot host must not pin the stream
  // shape — the next, correctly-shaped capture starts the stream.
  Trace wrong(kLen / 4, 0.01);
  monitor.push(wrong);
  EXPECT_EQ(monitor.stats().traces_rejected, 1u);
  EXPECT_EQ(monitor.expected_trace_length(), 0u);
  EXPECT_FALSE(monitor.last_score().has_value());

  emts::Rng rng{64};
  monitor.push(golden_trace(rng));
  EXPECT_EQ(monitor.expected_trace_length(), kLen);
  EXPECT_TRUE(monitor.last_score().has_value());
}

TEST(RuntimeMonitor, RejectsNonFiniteSamples) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 65));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  emts::Rng rng{66};
  monitor.push(golden_trace(rng));
  const double before = *monitor.last_score();

  Trace nan_trace = golden_trace(rng);
  nan_trace[37] = std::nan("");
  Trace inf_trace = golden_trace(rng);
  inf_trace[kLen - 1] = std::numeric_limits<double>::infinity();
  monitor.push(nan_trace);
  monitor.push(inf_trace);

  EXPECT_EQ(monitor.stats().traces_rejected, 2u);
  EXPECT_EQ(*monitor.last_score(), before);  // nothing downstream moved
  EXPECT_EQ(monitor.stats().scored_captures, 1u);

  const auto events = monitor.drain_events();
  std::vector<double> rejected_at;
  for (const auto& e : events) {
    if (e.kind == MonitorEventKind::kTraceRejectedNonFinite) rejected_at.push_back(e.value);
  }
  ASSERT_EQ(rejected_at.size(), 2u);
  EXPECT_DOUBLE_EQ(rejected_at[0], 37.0);
  EXPECT_DOUBLE_EQ(rejected_at[1], static_cast<double>(kLen - 1));
}

TEST(TrustEvaluator, AcceptsTraceLengthMatchesFittedShape) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 67));
  EXPECT_TRUE(eval.accepts_trace_length(kLen));
  EXPECT_FALSE(eval.accepts_trace_length(0));
  EXPECT_FALSE(eval.accepts_trace_length(kLen / 2));
  EXPECT_FALSE(eval.accepts_trace_length(4 * kLen));
}

// ---------- event ring accounting ----------

// events_dropped must stay exact across interleaved push/drain cycles and
// across both drain overloads: every recorded event is either drained
// exactly once or counted dropped exactly once.
TEST(RuntimeMonitor, EventOverflowAccountingStaysExactAcrossInterleavedDrains) {
  RuntimeMonitor::Options opt = small_options();
  opt.event_log_capacity = 3;
  opt.calibration_traces = 1000;  // stay calibrating: rejections are the only events
  RuntimeMonitor monitor{kFs, opt};
  emts::Rng rng{71};
  monitor.push(golden_trace(rng));  // pins the stream shape; records no event

  std::uint64_t recorded = 0;
  std::uint64_t drained_total = 0;
  std::vector<MonitorEvent> sink;
  const Trace bad(kLen + 3, 0.0);
  for (int round = 0; round < 6; ++round) {
    const int burst = 1 + round;  // 1..6 events against a 3-slot ring
    for (int i = 0; i < burst; ++i) monitor.push(bad);
    recorded += static_cast<std::uint64_t>(burst);
    if (round % 2 == 0) {
      const std::size_t before = sink.size();
      const std::size_t n = monitor.drain_events(sink);  // appending overload
      EXPECT_EQ(sink.size() - before, n);  // appends, never clears the sink
      drained_total += n;
    } else {
      drained_total += monitor.drain_events().size();  // value overload
    }
    // The invariant under test: every recorded event is either drained
    // exactly once or counted dropped exactly once, at every interleaving.
    EXPECT_EQ(recorded, drained_total + monitor.stats().events_dropped)
        << "round " << round;
    EXPECT_TRUE(monitor.drain_events().empty());  // drain is complete
  }

  // Bursts of 1..6 against capacity 3 drop max(0, burst - 3) each.
  EXPECT_EQ(recorded, 21u);
  EXPECT_EQ(monitor.stats().events_dropped, 6u);
  EXPECT_EQ(drained_total, 15u);
  EXPECT_EQ(monitor.stats().traces_rejected, recorded);
  for (const auto& e : sink) {
    EXPECT_EQ(e.kind, MonitorEventKind::kTraceRejectedShape);
    EXPECT_DOUBLE_EQ(e.value, static_cast<double>(kLen + 3));
  }
}

TEST(RuntimeMonitor, StateLabelsAreDistinct) {
  EXPECT_STRNE(monitor_state_label(MonitorState::kCalibrating),
               monitor_state_label(MonitorState::kMonitoring));
  EXPECT_STRNE(monitor_state_label(MonitorState::kMonitoring),
               monitor_state_label(MonitorState::kAlarm));
}

// ---------- export/restore at the core level ----------

TEST(RuntimeMonitor, ExportStateMirrorsOptionsAndStream) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{60};
  for (int i = 0; i < 5; ++i) monitor.push(golden_trace(rng));

  const MonitorStateImage image = monitor.export_state();
  EXPECT_EQ(image.sample_rate, kFs);
  EXPECT_EQ(image.calibration_traces, 16u);
  EXPECT_EQ(image.alarm_debounce, 3u);
  EXPECT_EQ(image.spectral_window, 8u);
  EXPECT_EQ(image.state, MonitorState::kCalibrating);
  EXPECT_EQ(image.traces_seen, 5u);
  EXPECT_EQ(image.calibration.size(), 5u);
  EXPECT_EQ(image.stats.traces_ingested, 5u);
}

TEST(RuntimeMonitor, RestoredCalibratingMonitorFinishesIdentically) {
  // Export mid-calibration, restore into a fresh self-calibrating monitor,
  // and finish the stream in both worlds: the fitted detector stacks and
  // every subsequent score must coincide exactly.
  emts::Rng rng_ref{61};
  emts::Rng rng_cut{61};
  RuntimeMonitor reference{kFs, small_options()};
  RuntimeMonitor exporter{kFs, small_options()};
  for (int i = 0; i < 9; ++i) {
    reference.push(golden_trace(rng_ref));
    exporter.push(golden_trace(rng_cut));
  }
  RuntimeMonitor restored{kFs, small_options()};
  restored.restore_state(exporter.export_state());
  EXPECT_EQ(restored.state(), MonitorState::kCalibrating);
  EXPECT_EQ(restored.traces_seen(), 9u);

  for (int i = 0; i < 20; ++i) {
    const Trace t = golden_trace(rng_ref);
    reference.push(t);
    restored.push(t);
    EXPECT_EQ(restored.state(), reference.state());
    EXPECT_EQ(restored.last_score(), reference.last_score());
  }
  EXPECT_EQ(reference.state(), MonitorState::kMonitoring);
}

TEST(RuntimeMonitor, RestoreRefusesCalibratingImageOnPreFittedMonitor) {
  RuntimeMonitor calibrating{kFs, small_options()};
  emts::Rng rng{62};
  calibrating.push(golden_trace(rng));
  const MonitorStateImage image = calibrating.export_state();

  const TrustEvaluator evaluator = TrustEvaluator::calibrate(make_set(30, false, 63));
  RuntimeMonitor pre_fitted{kFs, evaluator, small_options()};
  EXPECT_THROW(pre_fitted.restore_state(image), emts::precondition_error);
}

}  // namespace
}  // namespace emts::core
