#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::core {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

Trace golden_trace(emts::Rng& rng) {
  Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

Trace infected_trace(emts::Rng& rng) {
  Trace t = golden_trace(rng);
  for (std::size_t i = 0; i < kLen; ++i) {
    // A fast tone (spectral signature) plus a slow component that survives
    // the preprocessor's 16x decimation (distance signature).
    t[i] += 0.6 * std::sin(2.0 * units::pi * 72e6 * static_cast<double>(i) / kFs) +
            0.3 * std::sin(2.0 * units::pi * 3e6 * static_cast<double>(i) / kFs);
  }
  return t;
}

RuntimeMonitor::Options small_options() {
  RuntimeMonitor::Options opt;
  opt.calibration_traces = 16;
  opt.alarm_debounce = 3;
  opt.spectral_window = 8;
  return opt;
}

// ---------- TrustEvaluator ----------

TraceSet make_set(std::size_t n, bool infected, std::uint64_t seed) {
  emts::Rng rng{seed};
  TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) {
    set.add(infected ? infected_trace(rng) : golden_trace(rng));
  }
  return set;
}

TEST(TrustEvaluator, GoldenBatchIsTrusted) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 1));
  const auto report = eval.evaluate(make_set(20, false, 2));
  EXPECT_EQ(report.verdict, Verdict::kTrusted);
  EXPECT_LT(report.anomalous_fraction, 0.2);
  EXPECT_FALSE(report.spectral.anomalous());
}

TEST(TrustEvaluator, InfectedBatchIsCompromised) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 3));
  const auto report = eval.evaluate(make_set(20, true, 4));
  // Both stages fire: distance and new spectral spot.
  EXPECT_EQ(report.verdict, Verdict::kCompromised);
  EXPECT_GT(report.anomalous_fraction, 0.9);
  EXPECT_TRUE(report.spectral.anomalous());
  EXPECT_GT(report.mean_distance, report.threshold);
}

TEST(TrustEvaluator, SummaryMentionsVerdict) {
  const auto eval = TrustEvaluator::calibrate(make_set(30, false, 5));
  const auto report = eval.evaluate(make_set(10, true, 6));
  EXPECT_NE(report.summary().find(verdict_label(report.verdict)), std::string::npos);
}

TEST(TrustEvaluator, RejectsBadAlarmFraction) {
  TrustEvaluator::Options opt;
  opt.anomalous_fraction_alarm = 0.0;
  EXPECT_THROW(TrustEvaluator::calibrate(make_set(10, false, 7), opt),
               emts::precondition_error);
}

TEST(VerdictLabels, AreDistinct) {
  EXPECT_STRNE(verdict_label(Verdict::kTrusted), verdict_label(Verdict::kSuspicious));
  EXPECT_STRNE(verdict_label(Verdict::kSuspicious), verdict_label(Verdict::kCompromised));
}

// ---------- RuntimeMonitor ----------

TEST(RuntimeMonitor, CalibratesThenMonitors) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{10};
  EXPECT_EQ(monitor.state(), MonitorState::kCalibrating);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(monitor.push(golden_trace(rng)), MonitorState::kCalibrating);
  }
  EXPECT_EQ(monitor.push(golden_trace(rng)), MonitorState::kMonitoring);
  EXPECT_NE(monitor.evaluator(), nullptr);
}

TEST(RuntimeMonitor, StaysCalmOnGoldenStream) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{11};
  for (int i = 0; i < 60; ++i) monitor.push(golden_trace(rng));
  EXPECT_NE(monitor.state(), MonitorState::kAlarm);
  EXPECT_EQ(monitor.traces_seen(), 60u);
}

TEST(RuntimeMonitor, AlarmsAfterDebouncedAnomalies) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{12};
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  // The Trojan activates: alarm after exactly `debounce` anomalous captures.
  monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
}

TEST(RuntimeMonitor, SingleGlitchDoesNotAlarm) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{13};
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  monitor.push(infected_trace(rng));  // one-off glitch
  for (int i = 0; i < 10; ++i) monitor.push(golden_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
}

TEST(RuntimeMonitor, AlarmCallbackFiresOnce) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{14};
  int fired = 0;
  monitor.on_alarm([&](const TrustReport& report) {
    ++fired;
    EXPECT_EQ(report.verdict, Verdict::kCompromised);
  });
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  for (int i = 0; i < 8; ++i) monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
  EXPECT_EQ(fired, 1);
}

TEST(RuntimeMonitor, AcknowledgeResumesMonitoring) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{15};
  for (int i = 0; i < 20; ++i) monitor.push(golden_trace(rng));
  for (int i = 0; i < 5; ++i) monitor.push(infected_trace(rng));
  ASSERT_EQ(monitor.state(), MonitorState::kAlarm);
  monitor.acknowledge_alarm();
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  // Re-alarms if the Trojan persists.
  for (int i = 0; i < 5; ++i) monitor.push(infected_trace(rng));
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
}

TEST(RuntimeMonitor, AcknowledgeWithoutAlarmRejected) {
  RuntimeMonitor monitor{kFs, small_options()};
  EXPECT_THROW(monitor.acknowledge_alarm(), emts::precondition_error);
}

TEST(RuntimeMonitor, LastScoreTracksMostRecentCapture) {
  RuntimeMonitor monitor{kFs, small_options()};
  emts::Rng rng{16};
  for (int i = 0; i < 16; ++i) monitor.push(golden_trace(rng));
  EXPECT_FALSE(monitor.last_score().has_value());  // still calibrating at 16th
  monitor.push(golden_trace(rng));
  ASSERT_TRUE(monitor.last_score().has_value());
  const double golden_score = *monitor.last_score();
  monitor.push(infected_trace(rng));
  EXPECT_GT(*monitor.last_score(), golden_score);
}

TEST(RuntimeMonitor, RejectsBadOptions) {
  RuntimeMonitor::Options bad = small_options();
  bad.calibration_traces = 2;
  EXPECT_THROW((RuntimeMonitor{kFs, bad}), emts::precondition_error);
  bad = small_options();
  bad.alarm_debounce = 0;
  EXPECT_THROW((RuntimeMonitor{kFs, bad}), emts::precondition_error);
  EXPECT_THROW((RuntimeMonitor{0.0, small_options()}), emts::precondition_error);
}

TEST(RuntimeMonitor, PreFittedStartsMonitoringImmediately) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 17));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  EXPECT_EQ(monitor.state(), MonitorState::kMonitoring);
  EXPECT_EQ(monitor.traces_seen(), 0u);  // cold start: zero calibration captures
  ASSERT_NE(monitor.evaluator(), nullptr);

  // First push is already scored, not swallowed by calibration.
  emts::Rng rng{18};
  monitor.push(golden_trace(rng));
  EXPECT_TRUE(monitor.last_score().has_value());
}

TEST(RuntimeMonitor, PreFittedAlarmsOnInfectedStream) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 19));
  RuntimeMonitor monitor{kFs, evaluator, small_options()};
  emts::Rng rng{20};
  for (int i = 0; i < 8 && monitor.state() != MonitorState::kAlarm; ++i) {
    monitor.push(infected_trace(rng));
  }
  EXPECT_EQ(monitor.state(), MonitorState::kAlarm);
}

TEST(RuntimeMonitor, PreFittedRejectsSampleRateMismatch) {
  const auto evaluator = TrustEvaluator::calibrate(make_set(30, false, 21));
  EXPECT_THROW((RuntimeMonitor{2.0 * kFs, evaluator}), emts::precondition_error);
}

TEST(RuntimeMonitor, StateLabelsAreDistinct) {
  EXPECT_STRNE(monitor_state_label(MonitorState::kCalibrating),
               monitor_state_label(MonitorState::kMonitoring));
  EXPECT_STRNE(monitor_state_label(MonitorState::kMonitoring),
               monitor_state_label(MonitorState::kAlarm));
}

}  // namespace
}  // namespace emts::core
