// Cross-cutting property tests: each pits a fast implementation against a
// slow-but-obviously-correct reference, or checks a physical invariant the
// models must not break (reciprocity, superposition, energy conservation).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/fft.hpp"
#include "em/biot_savart.hpp"
#include "em/coil.hpp"
#include "em/mutual.hpp"
#include "layout/power_grid.hpp"
#include "power/current_trace.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts {
namespace {

// ---------- FFT vs naive DFT ----------

std::vector<dsp::cplx> naive_dft(const std::vector<dsp::cplx>& x) {
  const std::size_t n = x.size();
  std::vector<dsp::cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    dsp::cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * units::pi * static_cast<double>(k * t) / static_cast<double>(n);
      acc += x[t] * dsp::cplx{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

class FftVsDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsDft, AgreesWithQuadraticReference) {
  const std::size_t n = GetParam();
  Rng rng{mix64(n)};
  std::vector<dsp::cplx> x(n);
  for (auto& v : x) v = dsp::cplx{rng.gaussian(), rng.gaussian()};

  auto fast = x;
  dsp::fft_in_place(fast);
  const auto slow = naive_dft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-8) << "bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsDft, ::testing::Values<std::size_t>(2, 8, 32, 128));

// ---------- EM reciprocity ----------

TEST(EmProperties, NeumannMutualInductanceIsReciprocal) {
  // M(A,B) == M(B,A) for arbitrary loop pairs.
  Rng rng{17};
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<layout::Segment> a;
    std::vector<layout::Segment> b;
    auto random_loop = [&](double scale, double z) {
      std::vector<layout::Segment> loop;
      layout::Vec3 first{rng.uniform(0.0, scale), rng.uniform(0.0, scale), z};
      layout::Vec3 prev = first;
      for (int i = 0; i < 4; ++i) {
        layout::Vec3 next = i == 3
                                ? first
                                : layout::Vec3{rng.uniform(0.0, scale),
                                               rng.uniform(0.0, scale), z};
        loop.push_back(layout::Segment{prev, next});
        prev = next;
      }
      return loop;
    };
    a = random_loop(0.01, 0.0);
    b = random_loop(0.01, 0.004);
    const em::MutualOptions options{5e-4, 0.0};
    const double m_ab = em::mutual_inductance(a, b, options);
    const double m_ba = em::mutual_inductance(b, a, options);
    EXPECT_NEAR(m_ab, m_ba, 1e-12 + 1e-9 * std::abs(m_ab)) << "trial " << trial;
  }
}

TEST(EmProperties, FieldSuperposition) {
  // B(path1 + path2) = B(path1) + B(path2).
  const layout::Segment s1{layout::Vec3{0, 0, 0}, layout::Vec3{1e-3, 0, 0}};
  const layout::Segment s2{layout::Vec3{1e-3, 0, 0}, layout::Vec3{1e-3, 1e-3, 0}};
  const layout::Vec3 p{0.5e-3, 0.3e-3, 0.2e-3};
  const auto both = em::path_field({s1, s2}, 2.0, p);
  const auto separate = em::segment_field(s1, 2.0, p) + em::segment_field(s2, 2.0, p);
  EXPECT_NEAR(both.x, separate.x, 1e-18);
  EXPECT_NEAR(both.y, separate.y, 1e-18);
  EXPECT_NEAR(both.z, separate.z, 1e-18);
}

TEST(EmProperties, FluxLinearInCurrent) {
  const layout::DieSpec die{};
  const auto fp = layout::reference_floorplan(die);
  const auto loops = layout::supply_loops(fp, layout::PadRing::for_die(die));
  const em::TurnSurface surf{em::TurnSurface::Shape::kRect, die.sensor_z, 0.2e-3, 0.2e-3,
                             1.8e-3, 1.8e-3};
  const double f1 = em::flux_through_surface(loops[0].segments, 1.0, surf);
  const double f5 = em::flux_through_surface(loops[0].segments, 5.0, surf);
  EXPECT_NEAR(f5, 5.0 * f1, 1e-9 * std::abs(f5) + 1e-24);
}

TEST(EmProperties, CouplingDecaysWithCoilHeight) {
  // Raising the pickup plane monotonically weakens the coupling magnitude.
  const layout::DieSpec die{};
  const auto fp = layout::reference_floorplan(die);
  const auto loops = layout::supply_loops(fp, layout::PadRing::for_die(die));
  const auto& loop = loops.front();
  double prev = 1e9;
  for (double z : {10e-6, 50e-6, 200e-6, 1e-3}) {
    const em::TurnSurface surf{em::TurnSurface::Shape::kDisk, z, 1e-3, 1e-3, 0.9e-3, 0.0};
    const double m = std::abs(em::flux_through_surface(loop.segments, 1.0, surf));
    EXPECT_LT(m, prev) << "z = " << z;
    prev = m;
  }
}

// ---------- power model invariants ----------

TEST(PowerProperties, SuperpositionOfContributions) {
  power::ClockSpec clock{};
  power::CurrentTrace combined{clock, 16};
  power::CurrentTrace only_a{clock, 16};
  power::CurrentTrace only_b{clock, 16};

  combined.add_pulse({2, 40.0, 300.0, 2000.0}, 8.0);
  combined.add_dc(1e-4);
  only_a.add_pulse({2, 40.0, 300.0, 2000.0}, 8.0);
  only_b.add_dc(1e-4);

  for (std::size_t i = 0; i < combined.samples().size(); ++i) {
    EXPECT_NEAR(combined.samples()[i], only_a.samples()[i] + only_b.samples()[i], 1e-18);
  }
}

TEST(PowerProperties, DerivativeIntegratesBackToCurrentDeltas) {
  power::ClockSpec clock{};
  power::CurrentTrace trace{clock, 8};
  trace.add_pulse({1, 25.0, 400.0, 3000.0}, 12.0);
  trace.add_pulse({5, 60.0, 100.0, 1500.0}, 12.0);
  const auto didt = trace.derivative();
  // Trapezoid-free check: cumulative sum of dI/dt * dt recovers I (up to the
  // first-sample convention).
  const double dt = 1.0 / trace.sample_rate();
  double acc = trace.samples()[0];
  for (std::size_t i = 1; i < didt.size(); ++i) {
    acc += didt[i] * dt;
    EXPECT_NEAR(acc, trace.samples()[i], 1e-12 + 1e-9 * std::abs(acc)) << "sample " << i;
  }
}

// ---------- statistics sanity ----------

TEST(StatsProperties, RmsDominatedByMeanAndStd) {
  // rms^2 = mean^2 + population variance (exactly).
  Rng rng{23};
  std::vector<double> v(5000);
  for (double& x : v) x = rng.gaussian(3.0, 2.0);
  const double m = stats::mean(v);
  double pop_var = 0.0;
  for (double x : v) pop_var += (x - m) * (x - m);
  pop_var /= static_cast<double>(v.size());
  EXPECT_NEAR(stats::rms(v) * stats::rms(v), m * m + pop_var, 1e-9);
}

}  // namespace
}  // namespace emts
