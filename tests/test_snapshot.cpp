// Snapshot/restore correctness: the whole point of MonitorStateImage and the
// EMFS container is that a restored monitor (or fleet) is indistinguishable
// from one that never stopped — so every comparison here is exact EQ on
// doubles, never NEAR.
#include "io/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "fleet/fleet.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::io {
namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

core::Trace golden_trace(emts::Rng& rng) {
  core::Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

core::Trace infected_trace(emts::Rng& rng) {
  core::Trace t = golden_trace(rng);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] += 0.6 * std::sin(2.0 * units::pi * 72e6 * static_cast<double>(i) / kFs) +
            0.3 * std::sin(2.0 * units::pi * 3e6 * static_cast<double>(i) / kFs);
  }
  return t;
}

core::TraceSet make_set(std::size_t n, bool infected, std::uint64_t seed) {
  emts::Rng rng{seed};
  core::TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) {
    set.add(infected ? infected_trace(rng) : golden_trace(rng));
  }
  return set;
}

const core::TrustEvaluator& fitted() {
  static const core::TrustEvaluator evaluator =
      core::TrustEvaluator::calibrate(make_set(30, false, 1));
  return evaluator;
}

core::RuntimeMonitor::Options small_options() {
  core::RuntimeMonitor::Options opt;
  opt.alarm_debounce = 3;
  opt.spectral_window = 8;
  return opt;
}

void expect_histogram_eq(const util::LatencyHistogram& a, const util::LatencyHistogram& b) {
  EXPECT_EQ(a.buckets(), b.buckets());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.total_ns(), b.total_ns());
  EXPECT_EQ(a.raw_min_ns(), b.raw_min_ns());
  EXPECT_EQ(a.max_ns(), b.max_ns());
}

void expect_stats_eq(const core::MonitorStats& a, const core::MonitorStats& b,
                     bool compare_latency) {
  EXPECT_EQ(a.traces_ingested, b.traces_ingested);
  EXPECT_EQ(a.traces_rejected, b.traces_rejected);
  EXPECT_EQ(a.calibration_captures, b.calibration_captures);
  EXPECT_EQ(a.scored_captures, b.scored_captures);
  EXPECT_EQ(a.per_trace_anomalies, b.per_trace_anomalies);
  EXPECT_EQ(a.spectral_passes, b.spectral_passes);
  EXPECT_EQ(a.windowed_anomalies, b.windowed_anomalies);
  EXPECT_EQ(a.spectral_recomputes, b.spectral_recomputes);
  EXPECT_EQ(a.spectral_incremental_updates, b.spectral_incremental_updates);
  EXPECT_EQ(a.alarms_latched, b.alarms_latched);
  EXPECT_EQ(a.alarms_acknowledged, b.alarms_acknowledged);
  EXPECT_EQ(a.events_dropped, b.events_dropped);
  if (compare_latency) {
    expect_histogram_eq(a.push_latency, b.push_latency);
    expect_histogram_eq(a.spectral_latency, b.spectral_latency);
  } else {
    // Continued streams re-time each push, but the *number* of recordings is
    // part of the deterministic contract.
    EXPECT_EQ(a.push_latency.count(), b.push_latency.count());
    EXPECT_EQ(a.spectral_latency.count(), b.spectral_latency.count());
  }
}

void expect_events_eq(const std::vector<core::MonitorEvent>& a,
                      const std::vector<core::MonitorEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].trace_index, b[i].trace_index);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

void expect_image_eq(const core::MonitorStateImage& a, const core::MonitorStateImage& b,
                     bool compare_latency = true) {
  EXPECT_EQ(a.sample_rate, b.sample_rate);
  EXPECT_EQ(a.calibration_traces, b.calibration_traces);
  EXPECT_EQ(a.alarm_debounce, b.alarm_debounce);
  EXPECT_EQ(a.spectral_window, b.spectral_window);
  EXPECT_EQ(a.event_log_capacity, b.event_log_capacity);
  EXPECT_EQ(a.incremental_spectral, b.incremental_spectral);
  EXPECT_EQ(a.spectral_rebuild_every, b.spectral_rebuild_every);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.traces_seen, b.traces_seen);
  EXPECT_EQ(a.expected_length, b.expected_length);
  EXPECT_EQ(a.consecutive_anomalies, b.consecutive_anomalies);
  EXPECT_EQ(a.alarm_latched_at, b.alarm_latched_at);
  EXPECT_EQ(a.last_score, b.last_score);
  ASSERT_EQ(a.last_spectral.has_value(), b.last_spectral.has_value());
  if (a.last_spectral.has_value()) {
    ASSERT_EQ(a.last_spectral->anomalies.size(), b.last_spectral->anomalies.size());
    for (std::size_t i = 0; i < a.last_spectral->anomalies.size(); ++i) {
      const core::SpectralAnomaly& x = a.last_spectral->anomalies[i];
      const core::SpectralAnomaly& y = b.last_spectral->anomalies[i];
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.frequency_hz, y.frequency_hz);
      EXPECT_EQ(x.golden_amplitude, y.golden_amplitude);
      EXPECT_EQ(x.suspect_amplitude, y.suspect_amplitude);
      EXPECT_EQ(x.ratio, y.ratio);
    }
  }
  EXPECT_EQ(a.calibration, b.calibration);
  EXPECT_EQ(a.window, b.window);
  EXPECT_EQ(a.window_total_pushed, b.window_total_pushed);
  EXPECT_EQ(a.spectral_count, b.spectral_count);
  EXPECT_EQ(a.spectral_updates_since_rebuild, b.spectral_updates_since_rebuild);
  EXPECT_EQ(a.spectral_sum, b.spectral_sum);  // bitwise accumulator identity
  expect_stats_eq(a.stats, b.stats, compare_latency);
  expect_events_eq(a.events, b.events);
}

class SnapshotFile : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_ =
      (std::filesystem::temp_directory_path() / "emts_snapshot_test.emfs").string();
};

// ---------- monitor state image serialization ----------

TEST(MonitorStateSerialization, RoundTripsBitIdentically) {
  core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
  const core::TraceSet golden = make_set(12, false, 2);
  const core::TraceSet infected = make_set(4, true, 3);
  monitor.push_batch(golden);
  monitor.push_batch(infected);  // latches the alarm (debounce 3)
  ASSERT_EQ(monitor.state(), core::MonitorState::kAlarm);

  const core::MonitorStateImage image = monitor.export_state();
  std::stringstream stream{std::ios::binary | std::ios::in | std::ios::out};
  write_monitor_state(stream, image);
  const core::MonitorStateImage loaded = read_monitor_state(stream);
  EXPECT_EQ(stream.peek(), std::stringstream::traits_type::eof());
  expect_image_eq(image, loaded);
}

TEST(MonitorStateSerialization, SelfCalibratingImageRoundTrips) {
  core::RuntimeMonitor::Options options = small_options();
  options.calibration_traces = 16;
  core::RuntimeMonitor monitor{kFs, options};
  monitor.push_batch(make_set(5, false, 4));  // mid-calibration
  ASSERT_EQ(monitor.state(), core::MonitorState::kCalibrating);

  const core::MonitorStateImage image = monitor.export_state();
  EXPECT_EQ(image.calibration.size(), 5u);
  std::stringstream stream{std::ios::binary | std::ios::in | std::ios::out};
  write_monitor_state(stream, image);
  expect_image_eq(image, read_monitor_state(stream));
}

TEST(MonitorStateSerialization, CorruptStateTagThrows) {
  core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
  monitor.push_batch(make_set(3, false, 5));
  std::stringstream stream{std::ios::binary | std::ios::in | std::ios::out};
  write_monitor_state(stream, monitor.export_state());
  std::string bytes = stream.str();
  // The state tag sits after the f64 rate, four u64 mirrors, the incremental
  // flag (u8) and the rebuild cadence (u64).
  bytes[8 + 4 * 8 + 1 + 8] = 7;
  std::istringstream corrupt{bytes, std::ios::binary};
  EXPECT_THROW(read_monitor_state(corrupt), emts::precondition_error);
}

TEST(MonitorStateSerialization, TruncatedStreamThrows) {
  core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
  monitor.push_batch(make_set(10, false, 6));
  std::stringstream stream{std::ios::binary | std::ios::in | std::ios::out};
  write_monitor_state(stream, monitor.export_state());
  const std::string bytes = stream.str();
  std::istringstream truncated{bytes.substr(0, bytes.size() / 2), std::ios::binary};
  EXPECT_THROW(read_monitor_state(truncated), emts::precondition_error);
}

// ---------- restored monitor = uninterrupted monitor ----------

TEST(MonitorRestore, ContinuationIsBitIdentical) {
  // Reference: one monitor runs the whole stream. Candidate: a second
  // monitor runs the first half, exports, restores into a third, which runs
  // the second half. Everything observable must match exactly.
  const core::TraceSet first_half = make_set(13, false, 7);
  core::TraceSet second_half = make_set(5, false, 8);
  for (core::Trace& t : make_set(6, true, 9).traces) second_half.add(std::move(t));

  core::RuntimeMonitor reference{kFs, fitted(), small_options()};
  reference.push_batch(first_half);
  reference.push_batch(second_half);

  core::RuntimeMonitor exporter{kFs, fitted(), small_options()};
  exporter.push_batch(first_half);
  const core::MonitorStateImage cut = exporter.export_state();

  core::RuntimeMonitor restored{kFs, fitted(), small_options()};
  restored.restore_state(cut);
  restored.push_batch(second_half);

  EXPECT_EQ(restored.state(), reference.state());
  EXPECT_EQ(restored.last_score(), reference.last_score());
  expect_image_eq(restored.export_state(), reference.export_state(),
                  /*compare_latency=*/false);

  // The alarm latched on the infected tail in both worlds.
  EXPECT_EQ(reference.state(), core::MonitorState::kAlarm);
}

TEST(MonitorRestore, LatchedAlarmSurvivesRestore) {
  core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
  monitor.push_batch(make_set(4, false, 10));
  monitor.push_batch(make_set(4, true, 11));
  ASSERT_EQ(monitor.state(), core::MonitorState::kAlarm);
  const core::MonitorStateImage image = monitor.export_state();

  core::RuntimeMonitor restored{kFs, fitted(), small_options()};
  restored.restore_state(image);
  EXPECT_EQ(restored.state(), core::MonitorState::kAlarm);

  // Acknowledge works on the restored monitor exactly as on the original.
  restored.acknowledge_alarm();
  monitor.acknowledge_alarm();
  EXPECT_EQ(restored.state(), monitor.state());
  expect_image_eq(restored.export_state(), monitor.export_state(),
                  /*compare_latency=*/false);
}

TEST(MonitorRestore, RefusesTouchedMonitor) {
  core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
  monitor.push_batch(make_set(3, false, 12));
  const core::MonitorStateImage image = monitor.export_state();

  core::RuntimeMonitor touched{kFs, fitted(), small_options()};
  touched.push_batch(make_set(1, false, 13));
  EXPECT_THROW(touched.restore_state(image), emts::precondition_error);
}

TEST(MonitorRestore, RefusesOptionAndRateMismatch) {
  core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
  monitor.push_batch(make_set(3, false, 14));
  const core::MonitorStateImage image = monitor.export_state();

  core::RuntimeMonitor::Options other = small_options();
  other.alarm_debounce = 5;
  core::RuntimeMonitor wrong_options{kFs, fitted(), other};
  EXPECT_THROW(wrong_options.restore_state(image), emts::precondition_error);

  core::MonitorStateImage wrong_rate = image;
  wrong_rate.sample_rate = kFs * 2;
  core::RuntimeMonitor fresh{kFs, fitted(), small_options()};
  EXPECT_THROW(fresh.restore_state(wrong_rate), emts::precondition_error);
}

TEST(MonitorRestore, RefusesEvaluatorPresenceMismatch) {
  // A monitoring image needs a pre-fitted target; a self-calibrating target
  // (no evaluator yet) must refuse it.
  core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
  monitor.push_batch(make_set(3, false, 15));
  const core::MonitorStateImage image = monitor.export_state();

  core::RuntimeMonitor::Options options = small_options();
  options.calibration_traces = 8;
  core::RuntimeMonitor self_calibrating{kFs, options};
  EXPECT_THROW(self_calibrating.restore_state(image), emts::precondition_error);
}

// ---------- EMFS container ----------

FleetSnapshot sample_snapshot() {
  FleetSnapshot snapshot;
  snapshot.shards = 2;
  snapshot.queue_capacity = 64;
  snapshot.backpressure = 0;
  for (const char* id : {"chip-00", "chip-01", "chip-02"}) {
    core::RuntimeMonitor monitor{kFs, fitted(), small_options()};
    monitor.push_batch(make_set(9, false, 16));
    snapshot.devices.push_back(FleetSnapshot::Device{id, fitted(), monitor.export_state()});
  }
  return snapshot;
}

TEST_F(SnapshotFile, FleetContainerRoundTrips) {
  const FleetSnapshot snapshot = sample_snapshot();
  save_fleet_snapshot(path_, snapshot);
  const FleetSnapshot loaded = load_fleet_snapshot(path_);

  EXPECT_EQ(loaded.shards, snapshot.shards);
  EXPECT_EQ(loaded.queue_capacity, snapshot.queue_capacity);
  EXPECT_EQ(loaded.backpressure, snapshot.backpressure);
  ASSERT_EQ(loaded.devices.size(), snapshot.devices.size());
  for (std::size_t d = 0; d < loaded.devices.size(); ++d) {
    EXPECT_EQ(loaded.devices[d].device_id, snapshot.devices[d].device_id);
    expect_image_eq(loaded.devices[d].monitor, snapshot.devices[d].monitor);
    // Evaluator round-trips through its EMCA embedding bit-identically:
    // loaded and original score the same trace to the same double.
    emts::Rng rng{17};
    const core::Trace probe = golden_trace(rng);
    EXPECT_EQ(loaded.devices[d].evaluator->detectors()[0]->score(probe),
              snapshot.devices[d].evaluator->detectors()[0]->score(probe));
  }
}

TEST_F(SnapshotFile, SaveRefusesUnsortedDevices) {
  FleetSnapshot snapshot = sample_snapshot();
  std::swap(snapshot.devices[0], snapshot.devices[2]);
  EXPECT_THROW(save_fleet_snapshot(path_, snapshot), emts::precondition_error);
}

TEST_F(SnapshotFile, TruncatedContainerThrows) {
  save_fleet_snapshot(path_, sample_snapshot());
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 9);  // clip into the last checksum
  EXPECT_THROW(load_fleet_snapshot(path_), emts::precondition_error);
  std::filesystem::resize_file(path_, full / 3);  // clip mid-record
  EXPECT_THROW(load_fleet_snapshot(path_), emts::precondition_error);
}

TEST_F(SnapshotFile, CorruptPayloadFailsItsChecksum) {
  save_fleet_snapshot(path_, sample_snapshot());
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  file.seekp(120);
  char byte = 0;
  file.seekg(120);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(120);
  file.write(&byte, 1);
  file.close();
  EXPECT_THROW(load_fleet_snapshot(path_), emts::precondition_error);
}

TEST_F(SnapshotFile, AbsurdDeclaredRecordSizeRejectedBeforeAllocating) {
  save_fleet_snapshot(path_, sample_snapshot());
  // First record's payload-size u64 sits right after the container header
  // (21 bytes) and the first device id string (4 + 7 bytes).
  const std::streamoff size_offset = 21 + 4 + 7;
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  const std::uint64_t absurd = 1ull << 60;
  file.seekp(size_offset);
  file.write(reinterpret_cast<const char*>(&absurd), sizeof absurd);
  file.close();
  EXPECT_THROW(load_fleet_snapshot(path_), emts::precondition_error);
}

TEST_F(SnapshotFile, RefusesV1Container) {
  // v1 predates the incremental spectral state; the loader must name the
  // version instead of misparsing the record bytes.
  save_fleet_snapshot(path_, sample_snapshot());
  std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
  const std::uint32_t old_version = 1;
  file.seekp(4);  // version u32 right after the 4-byte magic
  file.write(reinterpret_cast<const char*>(&old_version), sizeof old_version);
  file.close();
  try {
    load_fleet_snapshot(path_);
    FAIL() << "v1 container was accepted";
  } catch (const emts::precondition_error& error) {
    EXPECT_NE(std::string{error.what()}.find("unsupported version 1"), std::string::npos);
  }
}

TEST_F(SnapshotFile, TrailingBytesThrow) {
  save_fleet_snapshot(path_, sample_snapshot());
  std::ofstream file{path_, std::ios::binary | std::ios::app};
  file << "junk";
  file.close();
  EXPECT_THROW(load_fleet_snapshot(path_), emts::precondition_error);
}

// ---------- fleet snapshot / restore ----------

TEST_F(SnapshotFile, FleetRoundTripContinuesBitIdentically) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.monitor = small_options();
  const std::vector<std::string> ids{"chip-00", "chip-01", "chip-02"};

  const core::TraceSet clean_a = make_set(11, false, 20);
  const core::TraceSet clean_b = make_set(9, false, 21);
  const core::TraceSet dirty = make_set(5, true, 22);

  // Reference fleet: both halves, no interruption.
  fleet::FleetMonitor reference{options};
  for (const std::string& id : ids) reference.add_device(id, fitted());
  for (const std::string& id : ids) reference.submit_batch(id, clean_a);
  reference.submit_batch(ids[0], clean_b);
  reference.submit_batch(ids[1], dirty);  // one device alarms
  reference.flush();

  // Interrupted fleet: first half, snapshot to disk, restore onto a fleet
  // with a *different* shard layout, then the second half.
  io::FleetSnapshot cut;
  {
    fleet::FleetMonitor first{options};
    for (const std::string& id : ids) first.add_device(id, fitted());
    for (const std::string& id : ids) first.submit_batch(id, clean_a);
    first.flush();
    cut = first.snapshot();
    save_fleet_snapshot(path_, cut);
  }

  fleet::FleetOptions reshaped = options;
  reshaped.shards = 3;
  fleet::FleetMonitor restored{reshaped};
  restored.restore(load_fleet_snapshot(path_));
  EXPECT_EQ(restored.device_count(), ids.size());
  restored.submit_batch(ids[0], clean_b);
  restored.submit_batch(ids[1], dirty);
  restored.flush();

  // Per-device monitor state must match the uninterrupted world exactly.
  const fleet::FleetStats expect = reference.stats();
  const fleet::FleetStats got = restored.stats();
  ASSERT_EQ(got.sessions.size(), expect.sessions.size());
  for (std::size_t s = 0; s < got.sessions.size(); ++s) {
    EXPECT_EQ(got.sessions[s].device_id, expect.sessions[s].device_id);
    EXPECT_EQ(got.sessions[s].state, expect.sessions[s].state);
    EXPECT_EQ(got.sessions[s].last_score, expect.sessions[s].last_score);
    expect_stats_eq(got.sessions[s].monitor, expect.sessions[s].monitor,
                    /*compare_latency=*/false);
  }
  EXPECT_EQ(got.devices_alarm, expect.devices_alarm);
  EXPECT_EQ(got.alarms_latched, expect.alarms_latched);

  // Event sequences survive the round trip too: same devices, same kinds,
  // same trace indices, same values.
  std::vector<fleet::FleetEvent> expect_events = reference.drain_events();
  std::vector<fleet::FleetEvent> got_events = restored.drain_events();
  ASSERT_EQ(got_events.size(), expect_events.size());
  for (std::size_t e = 0; e < got_events.size(); ++e) {
    EXPECT_EQ(got_events[e].device_id, expect_events[e].device_id);
    EXPECT_EQ(got_events[e].event.kind, expect_events[e].event.kind);
    EXPECT_EQ(got_events[e].event.trace_index, expect_events[e].event.trace_index);
    EXPECT_EQ(got_events[e].event.value, expect_events[e].event.value);
  }
}

TEST(FleetRestore, RefusesNonEmptyFleet) {
  fleet::FleetOptions options;
  options.monitor = small_options();
  fleet::FleetMonitor source{options};
  source.add_device("chip-00", fitted());
  const io::FleetSnapshot snapshot = source.snapshot();

  fleet::FleetMonitor occupied{options};
  occupied.add_device("chip-01", fitted());
  EXPECT_THROW(occupied.restore(snapshot), emts::precondition_error);
}

TEST(FleetSnapshot, CapturesLayoutAndSortsDevices) {
  fleet::FleetOptions options;
  options.shards = 3;
  options.queue_capacity = 17;
  options.backpressure = fleet::BackpressurePolicy::kDropOldest;
  options.monitor = small_options();
  fleet::FleetMonitor fleet{options};
  fleet.add_device("zeta", fitted());
  fleet.add_device("alpha", fitted());

  const io::FleetSnapshot snapshot = fleet.snapshot();
  EXPECT_EQ(snapshot.shards, 3u);
  EXPECT_EQ(snapshot.queue_capacity, 17u);
  EXPECT_EQ(snapshot.backpressure,
            static_cast<std::uint8_t>(fleet::BackpressurePolicy::kDropOldest));
  ASSERT_EQ(snapshot.devices.size(), 2u);
  EXPECT_EQ(snapshot.devices[0].device_id, "alpha");
  EXPECT_EQ(snapshot.devices[1].device_id, "zeta");
}

// ---------- incremental snapshots = full snapshots, cheaper ----------

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(SnapshotFile, IncrementalRewritesOnlyTheDirtyRecordAndMatchesFullBytes) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.monitor = small_options();
  fleet::FleetMonitor fleet{options};
  std::vector<std::string> ids;
  for (int d = 0; d < 64; ++d) {
    char id[16];
    std::snprintf(id, sizeof id, "dev-%02d", d);
    ids.emplace_back(id);
    fleet.add_device(ids.back(), fitted());
  }
  const core::TraceSet warmup = make_set(3, false, 30);
  for (const std::string& id : ids) fleet.submit_batch(id, warmup);
  fleet.flush();

  FleetSnapshotRecordCache cache;
  SnapshotSaveStats stats;
  // Cold cache: the priming cut encodes everything.
  save_fleet_snapshot(path_, fleet.snapshot(fleet::SnapshotMode::kFull), cache, &stats);
  EXPECT_EQ(stats.records_rewritten, 64u);
  EXPECT_EQ(stats.records_reused, 0u);

  // Move exactly one device; the next incremental cut re-encodes only it.
  fleet.submit_batch(ids[17], make_set(2, false, 31));
  fleet.flush();
  save_fleet_snapshot(path_, fleet.snapshot(fleet::SnapshotMode::kIncremental), cache,
                      &stats);
  EXPECT_EQ(stats.records_rewritten, 1u);
  EXPECT_EQ(stats.records_reused, 63u);

  // The incremental container is byte-identical to a full rewrite of the
  // same fleet state — no delta format, no drift.
  const std::string full_path = path_ + ".full";
  save_fleet_snapshot(full_path, fleet.snapshot(fleet::SnapshotMode::kFull));
  EXPECT_EQ(slurp(path_), slurp(full_path));
  std::filesystem::remove(full_path);

  // And it restores exactly like any other EMFS container.
  fleet::FleetMonitor restored{options};
  restored.restore(load_fleet_snapshot(path_));
  ASSERT_EQ(restored.device_count(), ids.size());
  const fleet::FleetStats expect = fleet.stats();
  const fleet::FleetStats got = restored.stats();
  ASSERT_EQ(got.sessions.size(), expect.sessions.size());
  for (std::size_t s = 0; s < got.sessions.size(); ++s) {
    EXPECT_EQ(got.sessions[s].device_id, expect.sessions[s].device_id);
    EXPECT_EQ(got.sessions[s].state, expect.sessions[s].state);
    EXPECT_EQ(got.sessions[s].last_score, expect.sessions[s].last_score);
    expect_stats_eq(got.sessions[s].monitor, expect.sessions[s].monitor,
                    /*compare_latency=*/false);
  }
}

TEST_F(SnapshotFile, DrainAndAcknowledgeDirtyTheDeviceWithoutNewTraces) {
  fleet::FleetOptions options;
  options.monitor = small_options();
  fleet::FleetMonitor fleet{options};
  fleet.add_device("solo", fitted());
  fleet.submit_batch("solo", make_set(4, false, 32));
  fleet.submit_batch("solo", make_set(4, true, 33));  // anomalies + latched alarm
  fleet.flush();

  FleetSnapshotRecordCache cache;
  SnapshotSaveStats stats;
  save_fleet_snapshot(path_, fleet.snapshot(fleet::SnapshotMode::kFull), cache, &stats);

  // Quiescent fleet: an incremental cut reuses the record wholesale.
  save_fleet_snapshot(path_, fleet.snapshot(fleet::SnapshotMode::kIncremental), cache,
                      &stats);
  EXPECT_EQ(stats.records_reused, 1u);
  EXPECT_EQ(stats.records_rewritten, 0u);

  // Draining events mutates the session without moving traces_ingested; the
  // dirty tracking must notice or a restore would replay drained events.
  ASSERT_FALSE(fleet.drain_events().empty());
  save_fleet_snapshot(path_, fleet.snapshot(fleet::SnapshotMode::kIncremental), cache,
                      &stats);
  EXPECT_EQ(stats.records_rewritten, 1u);

  // Acknowledging a latched alarm likewise.
  fleet.acknowledge_alarm("solo");
  save_fleet_snapshot(path_, fleet.snapshot(fleet::SnapshotMode::kIncremental), cache,
                      &stats);
  EXPECT_EQ(stats.records_rewritten, 1u);

  const std::string full_path = path_ + ".full";
  save_fleet_snapshot(full_path, fleet.snapshot(fleet::SnapshotMode::kFull));
  EXPECT_EQ(slurp(path_), slurp(full_path));
  std::filesystem::remove(full_path);
}

TEST_F(SnapshotFile, PlaceholderRecordsDemandTheCachePath) {
  fleet::FleetOptions options;
  options.monitor = small_options();
  fleet::FleetMonitor fleet{options};
  fleet.add_device("solo", fitted());
  fleet.submit_batch("solo", make_set(5, false, 34));
  fleet.flush();

  FleetSnapshotRecordCache cache;
  save_fleet_snapshot(path_, fleet.snapshot(fleet::SnapshotMode::kFull), cache);

  const io::FleetSnapshot placeholders = fleet.snapshot(fleet::SnapshotMode::kIncremental);
  ASSERT_EQ(placeholders.devices.size(), 1u);
  ASSERT_FALSE(placeholders.devices[0].dirty);
  EXPECT_FALSE(placeholders.devices[0].evaluator.has_value());

  // The plain save has no cache to materialize a clean record from.
  const std::string other = path_ + ".other";
  EXPECT_THROW(save_fleet_snapshot(other, placeholders), emts::precondition_error);
  // Neither does a cache that never saw the device.
  FleetSnapshotRecordCache cold;
  EXPECT_THROW(save_fleet_snapshot(other, placeholders, cold), emts::precondition_error);
  std::filesystem::remove(other);
  // And a restore cannot conjure monitor state out of a placeholder.
  fleet::FleetMonitor fresh{options};
  EXPECT_THROW(fresh.restore(placeholders), emts::precondition_error);

  // The warm cache, though, still writes a complete loadable container.
  SnapshotSaveStats stats;
  save_fleet_snapshot(path_, placeholders, cache, &stats);
  EXPECT_EQ(stats.records_reused, 1u);
  EXPECT_EQ(stats.records_rewritten, 0u);
  fleet::FleetMonitor restored{options};
  restored.restore(load_fleet_snapshot(path_));
  EXPECT_EQ(restored.device_count(), 1u);
}

TEST_F(SnapshotFile, CacheAwareSavePrunesDepartedDevices) {
  const FleetSnapshot three = sample_snapshot();
  FleetSnapshotRecordCache cache;
  save_fleet_snapshot(path_, three, cache);
  EXPECT_EQ(cache.records.size(), 3u);

  FleetSnapshot two = three;
  two.devices.erase(two.devices.begin() + 1);  // chip-01 departs
  save_fleet_snapshot(path_, two, cache);
  EXPECT_EQ(cache.records.size(), 2u);
  EXPECT_EQ(cache.records.count("chip-01"), 0u);
  EXPECT_EQ(load_fleet_snapshot(path_).devices.size(), 2u);
}

}  // namespace
}  // namespace emts::io
