// CaptureEngine contract tests: the determinism guarantees that make the
// parallel acquisition layer safe to substitute for the historical serial
// loops everywhere (benches, examples, tools).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "stats/snr.hpp"

using namespace emts;

namespace {

core::TraceSet serial_batch(const sim::Chip& chip, sim::Pickup pickup, std::size_t count,
                            std::uint64_t first, bool encrypting = true) {
  core::TraceSet set;
  set.sample_rate = chip.sample_rate();
  for (std::uint64_t t = 0; t < count; ++t) {
    set.add(chip.capture(encrypting, first + t).of(pickup));
  }
  return set;
}

void expect_identical(const core::TraceSet& a, const core::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.trace_length(), b.trace_length());
  EXPECT_DOUBLE_EQ(a.sample_rate, b.sample_rate);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Byte-identical, not approximately equal: same index -> same RNG stream
    // -> the same doubles, whatever thread produced them.
    EXPECT_EQ(a.traces[i], b.traces[i]) << "trace " << i << " differs";
  }
}

}  // namespace

// The capture core is a pure function of (seed, trace_index, encrypting,
// armed Trojan): two independently constructed Chips replay the exact same
// realizations for the same index.
TEST(CaptureEngine, CaptureIsPureAcrossChipInstances) {
  const sim::ChipConfig config = sim::make_default_config();
  const sim::Chip a{config};
  const sim::Chip b{config};
  for (std::uint64_t index : {0ull, 1ull, 937ull, 1048576ull}) {
    const auto ca = a.capture(true, index);
    const auto cb = b.capture(true, index);
    EXPECT_EQ(ca.onchip_v, cb.onchip_v) << "index " << index;
    EXPECT_EQ(ca.external_v, cb.external_v) << "index " << index;
  }
  // Idle windows draw from a distinct stream but are equally reproducible.
  EXPECT_EQ(a.capture(false, 7).onchip_v, b.capture(false, 7).onchip_v);
  EXPECT_NE(a.capture(false, 7).onchip_v, a.capture(true, 7).onchip_v);
}

// Arming a Trojan moves captures onto a different (still deterministic)
// noise stream; disarming restores the golden realizations exactly.
TEST(CaptureEngine, ArmedStreamIsDistinctAndReversible) {
  sim::Chip chip{sim::make_default_config()};
  const auto golden = chip.capture(true, 11).onchip_v;
  chip.arm(trojan::TrojanKind::kT2Leakage);
  const auto armed_once = chip.capture(true, 11).onchip_v;
  const auto armed_twice = chip.capture(true, 11).onchip_v;
  chip.disarm_all();
  EXPECT_NE(golden, armed_once);
  EXPECT_EQ(armed_once, armed_twice);
  EXPECT_EQ(chip.capture(true, 11).onchip_v, golden);
}

// The headline guarantee: engine output is byte-identical to the serial
// loop for every thread count, including counts far above the trace count.
TEST(CaptureEngine, BatchMatchesSerialForEveryThreadCount) {
  const sim::Chip chip{sim::make_default_config()};
  constexpr std::size_t kCount = 24;
  constexpr std::uint64_t kFirst = 4242;
  const auto serial = serial_batch(chip, sim::Pickup::kOnChipSensor, kCount, kFirst);

  for (std::size_t threads : {1u, 2u, 8u}) {
    sim::EngineOptions options;
    options.threads = threads;
    options.chunk = 3;  // deliberately not a divisor of kCount
    const sim::CaptureEngine engine{options};
    ASSERT_EQ(engine.thread_count(), threads);
    const auto batch =
        engine.capture_batch(chip, sim::Pickup::kOnChipSensor, kCount, kFirst);
    expect_identical(serial, batch);
  }
}

TEST(CaptureEngine, IdleAndExternalBatchesMatchSerial) {
  const sim::Chip chip{sim::make_default_config()};
  sim::EngineOptions options;
  options.threads = 4;
  const sim::CaptureEngine engine{options};
  expect_identical(serial_batch(chip, sim::Pickup::kExternalProbe, 10, 5, false),
                   engine.capture_batch(chip, sim::Pickup::kExternalProbe, 10, 5, false));
}

// capture_pair_batch records both pickups from the same physical windows, so
// each side must equal the corresponding single-pickup batch.
TEST(CaptureEngine, PairBatchMatchesSinglePickupBatches) {
  const sim::Chip chip{sim::make_default_config()};
  sim::EngineOptions options;
  options.threads = 2;
  const sim::CaptureEngine engine{options};
  const auto pair = engine.capture_pair_batch(chip, 12, 77);
  expect_identical(pair.onchip,
                   engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 12, 77));
  expect_identical(pair.external,
                   engine.capture_batch(chip, sim::Pickup::kExternalProbe, 12, 77));
}

// snr_batch is the paper's recipe (signal windows then idle windows) run
// through the pool; it must agree exactly with the hand-rolled computation.
TEST(CaptureEngine, SnrBatchMatchesSerialRecipe) {
  const sim::Chip chip{sim::make_default_config()};
  constexpr std::size_t kWindows = 6;
  constexpr std::uint64_t kBase = 100;
  std::vector<double> signal;
  std::vector<double> idle;
  for (std::uint64_t t = 0; t < kWindows; ++t) {
    const auto s = chip.capture(true, kBase + t).onchip_v;
    signal.insert(signal.end(), s.begin(), s.end());
    const auto n = chip.capture(false, kBase + kWindows + t).onchip_v;
    idle.insert(idle.end(), n.begin(), n.end());
  }
  const double expected = stats::snr_db(signal, idle);

  sim::EngineOptions options;
  options.threads = 4;
  const sim::CaptureEngine engine{options};
  EXPECT_DOUBLE_EQ(
      engine.snr_batch(chip, sim::Pickup::kOnChipSensor, kWindows, kBase), expected);
}

TEST(CaptureEngine, EmptyBatchIsWellFormed) {
  const sim::Chip chip{sim::make_default_config()};
  const sim::CaptureEngine engine{sim::EngineOptions{2, 4}};
  const auto set = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 0, 0);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_DOUBLE_EQ(set.sample_rate, chip.sample_rate());
}

// Regression: EMTS_THREADS comes from deployment scripts, so garbage ("4x",
// "", "-2", "0", absurd counts) must fall back to the hardware default
// instead of strtoul's silent misparse (e.g. "-2" wrapping to huge, "4x"
// truncating to 4).
TEST(CaptureEngine, EnvThreadOverrideParsedDefensively) {
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  sim::EngineOptions options;
  options.threads = 0;  // defer to the environment

  for (const char* bad : {"4x", "x4", "", "-2", "0", "9999999", "1e3", "3.5"}) {
    ASSERT_EQ(setenv("EMTS_THREADS", bad, 1), 0);
    const sim::CaptureEngine engine{options};
    EXPECT_EQ(engine.thread_count(), hw) << "EMTS_THREADS=\"" << bad << '"';
  }

  ASSERT_EQ(setenv("EMTS_THREADS", "3", 1), 0);
  {
    const sim::CaptureEngine engine{options};
    EXPECT_EQ(engine.thread_count(), 3u);
  }

  // An explicit option always beats the environment.
  ASSERT_EQ(setenv("EMTS_THREADS", "7", 1), 0);
  {
    sim::EngineOptions explicit_options;
    explicit_options.threads = 2;
    const sim::CaptureEngine engine{explicit_options};
    EXPECT_EQ(engine.thread_count(), 2u);
  }
  ASSERT_EQ(unsetenv("EMTS_THREADS"), 0);
}

// A worker exception must surface on the calling thread, and the engine must
// stay usable afterwards.
TEST(CaptureEngine, ParallelForPropagatesExceptions) {
  const sim::CaptureEngine engine{sim::EngineOptions{4, 2}};
  EXPECT_THROW(engine.parallel_for(
                   32,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   }),
               std::runtime_error);

  std::vector<int> hits(64, 0);
  engine.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}
