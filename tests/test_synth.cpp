#include "netlist/synth.hpp"

#include <gtest/gtest.h>

#include "netlist/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::netlist {
namespace {

// Exhaustively checks a synthesized function against its truth tables.
void verify(const Netlist& nl, const std::vector<NetId>& inputs,
            const std::vector<NetId>& outputs, const std::vector<TruthTable>& truth) {
  Simulator sim{nl};
  const std::size_t combos = std::size_t{1} << inputs.size();
  for (std::size_t v = 0; v < combos; ++v) {
    sim.set_word(inputs, v);
    sim.settle();
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      ASSERT_EQ(sim.value(outputs[o]), truth[o][v]) << "input " << v << " output " << o;
    }
  }
}

std::vector<NetId> make_inputs(Netlist& nl, std::size_t n) {
  std::vector<NetId> in;
  for (std::size_t i = 0; i < n; ++i) in.push_back(nl.add_net("in" + std::to_string(i)));
  return in;
}

TEST(Synth, ConstantFunctions) {
  Netlist nl;
  const auto in = make_inputs(nl, 2);
  const std::vector<TruthTable> truth{{false, false, false, false}, {true, true, true, true}};
  const auto out = synthesize_lut(nl, in, truth);
  verify(nl, in, out, truth);
}

TEST(Synth, SingleLiteralCostsNoGates) {
  Netlist nl;
  const auto in = make_inputs(nl, 3);
  // f = in2 (the top Shannon variable).
  TruthTable t(8, false);
  for (std::size_t v = 0; v < 8; ++v) t[v] = (v & 4) != 0;
  const auto out = synthesize_lut(nl, in, {t});
  EXPECT_EQ(out[0], in[2]);
  EXPECT_EQ(nl.cell_count(), 0u);
}

TEST(Synth, AndOrXorOfTwoVariables) {
  Netlist nl;
  const auto in = make_inputs(nl, 2);
  const std::vector<TruthTable> truth{
      {false, false, false, true},  // AND
      {false, true, true, true},    // OR
      {false, true, true, false},   // XOR
  };
  const auto out = synthesize_lut(nl, in, truth);
  verify(nl, in, out, truth);
}

TEST(Synth, ParityOfSixVariables) {
  Netlist nl;
  const auto in = make_inputs(nl, 6);
  TruthTable t(64);
  for (std::size_t v = 0; v < 64; ++v) t[v] = (__builtin_popcountll(v) & 1) != 0;
  const auto out = synthesize_lut(nl, in, {t});
  verify(nl, in, out, {t});
  // Parity shares aggressively: far fewer cells than the 63-mux naive tree.
  EXPECT_LT(nl.cell_count(), 24u);
}

TEST(Synth, MajorityOfFive) {
  Netlist nl;
  const auto in = make_inputs(nl, 5);
  TruthTable t(32);
  for (std::size_t v = 0; v < 32; ++v) t[v] = __builtin_popcountll(v) >= 3;
  const auto out = synthesize_lut(nl, in, {t});
  verify(nl, in, out, {t});
}

TEST(Synth, RedundantVariableIsSkipped) {
  Netlist nl;
  const auto in = make_inputs(nl, 3);
  // f = in0, independent of in1/in2.
  TruthTable t(8);
  for (std::size_t v = 0; v < 8; ++v) t[v] = (v & 1) != 0;
  const auto out = synthesize_lut(nl, in, {t});
  EXPECT_EQ(out[0], in[0]);
}

TEST(Synth, SharedSubfunctionsAcrossOutputs) {
  Netlist nl;
  const auto in = make_inputs(nl, 4);
  // Two outputs with identical truth tables must map to the same net.
  TruthTable t(16);
  emts::Rng rng{5};
  for (std::size_t v = 0; v < 16; ++v) t[v] = rng.coin();
  const auto out = synthesize_lut(nl, in, {t, t});
  EXPECT_EQ(out[0], out[1]);
}

TEST(Synth, RandomFunctionsExhaustive) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist nl;
    const auto in = make_inputs(nl, 5);
    emts::Rng rng{seed};
    std::vector<TruthTable> truth(3, TruthTable(32));
    for (auto& t : truth) {
      for (std::size_t v = 0; v < 32; ++v) t[v] = rng.coin();
    }
    const auto out = synthesize_lut(nl, in, truth);
    verify(nl, in, out, truth);
  }
}

TEST(Synth, RejectsBadArguments) {
  Netlist nl;
  const auto in = make_inputs(nl, 2);
  EXPECT_THROW(synthesize_lut(nl, {}, {TruthTable{true}}), emts::precondition_error);
  EXPECT_THROW(synthesize_lut(nl, in, {}), emts::precondition_error);
  EXPECT_THROW(synthesize_lut(nl, in, {TruthTable(3, false)}), emts::precondition_error);
}

}  // namespace
}  // namespace emts::netlist
