#include "array/grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "array/artifact.hpp"
#include "array/calibration.hpp"
#include "array/capture.hpp"
#include "array/fleet.hpp"
#include "array/localizer.hpp"
#include "array/monitor.hpp"
#include "fleet/fleet.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "sim/scan.hpp"
#include "util/assert.hpp"

namespace emts::array {
namespace {

// Shared world for the expensive paths: one golden chip, the default 4x4
// grid, and one 64-window calibration — fitted once for the whole suite
// (the deployment shape: calibrate once, monitor many).
struct ArrayWorld {
  sim::Chip chip{sim::make_default_config()};
  SensorGrid grid{chip.floorplan(), GridSpec{}};
  ArrayCapture capture{grid};
  ArrayCalibration calibration;
};

const ArrayWorld& world() {
  static const ArrayWorld* w = [] {
    auto* built = new ArrayWorld;
    built->calibration =
        calibrate_array(built->capture, sim::CaptureEngine::shared(), built->chip);
    return built;
  }();
  return *w;
}

// A fresh chip sharing the world's floorplan/config, with one Trojan armed.
sim::Chip armed_chip(trojan::TrojanKind kind) {
  sim::Chip chip{sim::make_default_config()};
  chip.arm(kind);
  return chip;
}

TEST(SensorGrid, ShapeAndGeometry) {
  const ArrayWorld& w = world();
  EXPECT_EQ(w.grid.nx(), 4u);
  EXPECT_EQ(w.grid.ny(), 4u);
  EXPECT_EQ(w.grid.sensor_count(), 16u);
  EXPECT_EQ(w.grid.modules().size(), w.grid.module_count());
  EXPECT_EQ(w.grid.sensitivity().sensors(), w.grid.sensor_count());
  EXPECT_EQ(w.grid.sensitivity().modules(), w.grid.module_count());
  // Sites tile the core row-major: site(iy * nx + ix) carries those indices.
  for (std::size_t s = 0; s < w.grid.sensor_count(); ++s) {
    const SensorSite& site = w.grid.site(s);
    EXPECT_EQ(site.iy * w.grid.nx() + site.ix, s);
    EXPECT_EQ(w.grid.nearest_site(site.x, site.y).ix, site.ix);
    EXPECT_EQ(w.grid.nearest_site(site.x, site.y).iy, site.iy);
  }
  EXPECT_THROW(w.grid.module_index("no/such/module"), precondition_error);
  // Coils must not overlap: the auto radius stays under half the pitch.
  EXPECT_LT(2.0 * w.grid.coil_radius(), std::min(w.grid.pitch_x(), w.grid.pitch_y()) + 1e-12);
}

TEST(SensorGrid, RejectsDegenerateSpecs) {
  const ArrayWorld& w = world();
  GridSpec one_by_n;
  one_by_n.nx = 1;
  EXPECT_THROW(SensorGrid(w.chip.floorplan(), one_by_n), precondition_error);
  GridSpec no_turns;
  no_turns.turns = 0;
  EXPECT_THROW(SensorGrid(w.chip.floorplan(), no_turns), precondition_error);
}

TEST(SensorGrid, SensitivityDecaysLaterallyWithDistance) {
  // Supply loops are extended conductors, so per-coil magnitudes are not
  // strictly monotone in distance to the module *centre* — but the aggregate
  // trend must hold: for every module, the nearest third of the coils couples
  // more strongly on average than the farthest third.
  const ArrayWorld& w = world();
  for (std::size_t m = 0; m < w.grid.module_count(); ++m) {
    const ModuleRef& module = w.grid.modules()[m];
    std::vector<std::pair<double, double>> by_distance;  // (distance, |M|)
    for (std::size_t s = 0; s < w.grid.sensor_count(); ++s) {
      const SensorSite& site = w.grid.site(s);
      by_distance.emplace_back(std::hypot(site.x - module.cx, site.y - module.cy),
                               std::abs(w.grid.sensitivity().at(s, m)));
    }
    std::sort(by_distance.begin(), by_distance.end());
    const std::size_t third = by_distance.size() / 3;
    double near_sum = 0.0;
    double far_sum = 0.0;
    for (std::size_t i = 0; i < third; ++i) {
      near_sum += by_distance[i].second;
      far_sum += by_distance[by_distance.size() - 1 - i].second;
    }
    EXPECT_GT(near_sum, far_sum) << "module " << module.name;
  }
}

TEST(SensorGrid, SensitivityDecaysMonotonicallyWithHeight) {
  // Lifting the whole coil plane away from the die weakens every module's
  // total coupling strictly — the clean monotone-decay axis.
  const ArrayWorld& w = world();
  const double heights[] = {2e-6, 8e-6, 32e-6, 128e-6};
  std::vector<double> previous;
  for (const double z : heights) {
    GridSpec spec;
    spec.z_clearance = z;
    const SensorGrid grid{w.chip.floorplan(), spec};
    std::vector<double> norms(grid.module_count(), 0.0);
    for (std::size_t m = 0; m < grid.module_count(); ++m) {
      double sum = 0.0;
      for (std::size_t s = 0; s < grid.sensor_count(); ++s) {
        const double v = grid.sensitivity().at(s, m);
        sum += v * v;
      }
      norms[m] = std::sqrt(sum);
    }
    if (!previous.empty()) {
      for (std::size_t m = 0; m < norms.size(); ++m) {
        EXPECT_LT(norms[m], previous[m]) << "z = " << z << ", module " << m;
      }
    }
    previous = std::move(norms);
  }
}

TEST(ArrayCapture, BundlesBitIdenticalAcrossRunsAndThreadCounts) {
  const ArrayWorld& w = world();
  sim::EngineOptions serial;
  serial.threads = 1;
  sim::EngineOptions parallel;
  parallel.threads = 4;
  const sim::CaptureEngine engine1{serial};
  const sim::CaptureEngine engine4{parallel};

  const BundleSet a = w.capture.capture_batch(engine1, w.chip, 6, 777);
  const BundleSet b = w.capture.capture_batch(engine4, w.chip, 6, 777);
  const BundleSet c = w.capture.capture_batch(engine4, w.chip, 6, 777);
  ASSERT_EQ(a.sensor_count(), b.sensor_count());
  for (std::size_t s = 0; s < a.sensor_count(); ++s) {
    for (std::size_t t = 0; t < a.windows(); ++t) {
      EXPECT_EQ(a.per_sensor[s].traces[t], b.per_sensor[s].traces[t]);
      EXPECT_EQ(b.per_sensor[s].traces[t], c.per_sensor[s].traces[t]);
    }
  }

  // The single-window path agrees with the batch at the same index.
  const Bundle single = w.capture.capture_bundle(w.chip, 779);
  for (std::size_t s = 0; s < single.sensor_count(); ++s) {
    EXPECT_EQ(single.traces[s], a.per_sensor[s].traces[2]);
  }

  // Different windows and different sensors see different noise streams.
  EXPECT_NE(a.per_sensor[0].traces[0], a.per_sensor[0].traces[1]);
  EXPECT_NE(a.per_sensor[0].traces[0], a.per_sensor[1].traces[0]);
}

TEST(ArrayCapture, NearFieldScanDeterministic) {
  const ArrayWorld& w = world();
  sim::ScanSpec spec;
  spec.nx = 6;
  spec.ny = 6;
  const sim::ScanMap first = sim::near_field_scan(w.chip, spec, true, 0);
  const sim::ScanMap second = sim::near_field_scan(w.chip, spec, true, 0);
  ASSERT_EQ(first.rms.size(), second.rms.size());
  EXPECT_EQ(first.rms, second.rms);
}

TEST(ArrayCalibration, RefusesArmedChip) {
  const ArrayWorld& w = world();
  const sim::Chip infected = armed_chip(trojan::TrojanKind::kT4PowerHog);
  EXPECT_THROW(calibrate_array(w.capture, sim::CaptureEngine::shared(), infected),
               precondition_error);
}

TEST(ArrayArtifact, EmaaRoundTripsBitIdentically) {
  const ArrayWorld& w = world();
  const std::string path =
      (std::filesystem::temp_directory_path() / "emts_array_test.emaa").string();
  save_array_calibration(path, w.calibration);
  const ArrayCalibration loaded = load_array_calibration(path);

  EXPECT_EQ(loaded.grid.nx, w.calibration.grid.nx);
  EXPECT_EQ(loaded.grid.ny, w.calibration.grid.ny);
  EXPECT_EQ(loaded.grid.turns, w.calibration.grid.turns);
  EXPECT_EQ(loaded.grid.coil_radius, w.calibration.grid.coil_radius);
  EXPECT_EQ(loaded.grid.z_clearance, w.calibration.grid.z_clearance);
  EXPECT_EQ(loaded.sample_rate, w.calibration.sample_rate);
  ASSERT_EQ(loaded.sensor_count(), w.calibration.sensor_count());
  for (std::size_t s = 0; s < loaded.sensor_count(); ++s) {
    EXPECT_EQ(loaded.sensors[s].golden_mean, w.calibration.sensors[s].golden_mean);
    EXPECT_EQ(loaded.sensors[s].baseline_residual, w.calibration.sensors[s].baseline_residual);
    EXPECT_EQ(loaded.sensors[s].evaluator.detectors().size(),
              w.calibration.sensors[s].evaluator.detectors().size());
  }

  // A loaded calibration drives a monitor exactly like the in-memory one.
  ArrayMonitor original{w.grid, w.calibration};
  ArrayMonitor reloaded{w.grid, loaded};
  const BundleSet probe = w.capture.capture_batch(sim::CaptureEngine::shared(), w.chip, 4, 5000);
  original.push_bundles(probe);
  reloaded.push_bundles(probe);
  EXPECT_EQ(original.anomaly_energy(), reloaded.anomaly_energy());

  // Corrupt magic must be refused.
  {
    std::fstream file{path, std::ios::binary | std::ios::in | std::ios::out};
    file.seekp(0);
    file.put('X');
  }
  EXPECT_THROW(load_array_calibration(path), precondition_error);
  std::filesystem::remove(path);
}

TEST(ArrayMonitor, GoldenStreamNeverAlarmsOver64Windows) {
  const ArrayWorld& w = world();
  ArrayMonitor monitor{w.grid, w.calibration};
  const BundleSet golden =
      w.capture.capture_batch(sim::CaptureEngine::shared(), w.chip, 64, 20000);
  const core::MonitorState state = monitor.push_bundles(golden);
  EXPECT_EQ(state, core::MonitorState::kMonitoring);
  EXPECT_FALSE(monitor.any_alarm());
  for (std::size_t s = 0; s < monitor.sensor_count(); ++s) {
    EXPECT_NE(monitor.session(s).state(), core::MonitorState::kAlarm) << "coil " << s;
    EXPECT_FALSE(monitor.spectral_alarmed(s)) << "coil " << s;
  }
}

TEST(ArrayMonitor, RejectsMismatchedCalibration) {
  const ArrayWorld& w = world();
  GridSpec small;
  small.nx = 2;
  small.ny = 2;
  const SensorGrid other{w.chip.floorplan(), small};
  EXPECT_THROW(ArrayMonitor(other, w.calibration), precondition_error);
}

TEST(Localizer, NamesTheHostModuleForEveryTrojan) {
  const ArrayWorld& w = world();
  const Localizer localizer{w.grid};
  struct Case {
    trojan::TrojanKind kind;
    std::size_t max_cells;  // T2/T4 exact, others within one grid cell
  };
  const Case cases[] = {
      {trojan::TrojanKind::kT1AmLeak, 1},  {trojan::TrojanKind::kT2Leakage, 0},
      {trojan::TrojanKind::kT3Cdma, 1},    {trojan::TrojanKind::kT4PowerHog, 0},
      {trojan::TrojanKind::kA2Analog, 1},
  };
  for (const Case& c : cases) {
    const sim::Chip infected = armed_chip(c.kind);
    const BundleSet bundles =
        w.capture.capture_batch(sim::CaptureEngine::shared(), infected, 48, 10000);
    ArrayMonitor monitor{w.grid, w.calibration};
    monitor.push_bundles(bundles);
    EXPECT_TRUE(monitor.any_alarm()) << trojan::kind_label(c.kind);

    const LocalizationReport report = localizer.localize(monitor.anomaly_energy());
    ASSERT_TRUE(report.localized) << trojan::kind_label(c.kind);
    const std::string expected = sim::trojan_host_module(c.kind);
    const std::size_t cells = cell_distance(w.grid, report.module_name, expected);
    EXPECT_LE(cells, c.max_cells)
        << trojan::kind_label(c.kind) << " localized to " << report.module_name;
    if (c.max_cells == 0) {
      EXPECT_EQ(report.module_name, expected);
    }
    EXPECT_GT(report.score, 0.5) << trojan::kind_label(c.kind);
  }
}

TEST(Localizer, ZeroAnomalyDoesNotLocalize) {
  const ArrayWorld& w = world();
  const Localizer localizer{w.grid};
  const LocalizationReport report =
      localizer.localize(std::vector<double>(w.grid.sensor_count(), 0.0));
  EXPECT_FALSE(report.localized);
}

TEST(ArrayFleet, SensorDeviceIdsAreZeroPaddedRowMajor) {
  EXPECT_EQ(sensor_device_id("die7", 0), "die7/s000");
  EXPECT_EQ(sensor_device_id("die7", 37), "die7/s037");
  EXPECT_EQ(sensor_device_id("die7", 999), "die7/s999");
}

TEST(ArrayFleet, HostedScoresBitIdenticalToStandaloneMonitor) {
  const ArrayWorld& w = world();
  const sim::Chip infected = armed_chip(trojan::TrojanKind::kT4PowerHog);
  const BundleSet bundles =
      w.capture.capture_batch(sim::CaptureEngine::shared(), infected, 24, 30000);

  ArrayMonitor standalone{w.grid, w.calibration};
  standalone.push_bundles(bundles);

  fleet::FleetOptions options;
  options.shards = 2;
  fleet::FleetMonitor hosted{options};
  add_array_device(hosted, "arr", w.calibration);
  submit_bundles(hosted, "arr", bundles);
  hosted.flush();

  const fleet::FleetStats stats = hosted.stats();
  ASSERT_EQ(stats.sessions.size(), w.grid.sensor_count());
  for (std::size_t s = 0; s < w.grid.sensor_count(); ++s) {
    const std::string key = sensor_device_id("arr", s);
    bool found = false;
    for (const fleet::SessionStats& session : stats.sessions) {
      if (session.device_id != key) continue;
      found = true;
      EXPECT_EQ(session.state, standalone.session(s).state()) << key;
      ASSERT_TRUE(session.last_score.has_value()) << key;
      ASSERT_TRUE(standalone.session(s).last_score().has_value()) << key;
      EXPECT_EQ(*session.last_score, *standalone.session(s).last_score()) << key;
    }
    EXPECT_TRUE(found) << key;
  }
}

}  // namespace
}  // namespace emts::array
