#include "dsp/window.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"

namespace emts::dsp {
namespace {

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannStartsAtZero) {
  const auto w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);  // periodic form peaks at n/2
}

TEST(Window, HammingEndpointsNonZero) {
  const auto w = make_window(WindowKind::kHamming, 64);
  EXPECT_NEAR(w[0], 0.08, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, BlackmanNearZeroAtEdges) {
  const auto w = make_window(WindowKind::kBlackman, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

class WindowSymmetry : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowSymmetry, PeriodicWindowsAreSymmetricAroundCenter) {
  const auto w = make_window(GetParam(), 128);
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_NEAR(w[i], w[128 - i], 1e-12) << "i=" << i;
  }
}

TEST_P(WindowSymmetry, ValuesBoundedByUnitInterval) {
  const auto w = make_window(GetParam(), 257);
  for (double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowSymmetry,
                         ::testing::Values(WindowKind::kRectangular, WindowKind::kHann,
                                           WindowKind::kHamming, WindowKind::kBlackman));

TEST(Window, RejectsZeroLength) {
  EXPECT_THROW(make_window(WindowKind::kHann, 0), emts::precondition_error);
}

TEST(Window, ApplyWindowMultipliesElementwise) {
  const std::vector<double> sig{1, 2, 3, 4};
  const std::vector<double> win{0.5, 1.0, 0.0, 2.0};
  const auto out = apply_window(sig, win);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 8.0);
}

TEST(Window, ApplyWindowRejectsMismatch) {
  EXPECT_THROW(apply_window({1, 2}, {1}), emts::precondition_error);
}

TEST(Window, CoherentGainOfHannIsHalfLength) {
  const auto w = make_window(WindowKind::kHann, 256);
  EXPECT_NEAR(coherent_gain(w), 128.0, 1e-9);
}

TEST(Window, CoherentGainOfRectIsLength) {
  const auto w = make_window(WindowKind::kRectangular, 100);
  EXPECT_DOUBLE_EQ(coherent_gain(w), 100.0);
}

}  // namespace
}  // namespace emts::dsp
