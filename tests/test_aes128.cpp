#include "aes/aes128.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace emts::aes {
namespace {

Key make_key(std::initializer_list<int> bytes) {
  Key k{};
  std::size_t i = 0;
  for (int b : bytes) k[i++] = static_cast<std::uint8_t>(b);
  return k;
}

Block make_block(std::initializer_list<int> bytes) {
  Block b{};
  std::size_t i = 0;
  for (int v : bytes) b[i++] = static_cast<std::uint8_t>(v);
  return b;
}

TEST(GfMul, KnownProducts) {
  // Classic FIPS examples: {57} * {83} = {c1}, {57} * {13} = {fe}.
  EXPECT_EQ(gf_mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(gf_mul(0x57, 0x13), 0xfe);
  EXPECT_EQ(gf_mul(0x02, 0x80), 0x1b);  // reduction case
}

TEST(GfMul, OneIsIdentityZeroAnnihilates) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GfMul, Commutative) {
  emts::Rng rng{1};
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u32());
    const auto b = static_cast<std::uint8_t>(rng.next_u32());
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
  }
}

TEST(Sbox, KnownValues) {
  // FIPS-197 S-box spot checks.
  EXPECT_EQ(sbox(0x00), 0x63);
  EXPECT_EQ(sbox(0x01), 0x7c);
  EXPECT_EQ(sbox(0x53), 0xed);
  EXPECT_EQ(sbox(0xff), 0x16);
}

TEST(Sbox, InverseRoundTripsAllBytes) {
  for (int x = 0; x < 256; ++x) {
    const auto b = static_cast<std::uint8_t>(x);
    EXPECT_EQ(inv_sbox(sbox(b)), b);
    EXPECT_EQ(sbox(inv_sbox(b)), b);
  }
}

TEST(Sbox, IsAPermutationWithNoFixedPoints) {
  std::array<int, 256> seen{};
  for (int x = 0; x < 256; ++x) {
    const auto s = sbox(static_cast<std::uint8_t>(x));
    ++seen[s];
    EXPECT_NE(s, x) << "AES S-box has no fixed points";
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(KeyExpansion, Fips197AppendixAVector) {
  // FIPS-197 A.1: key 2b7e151628aed2a6abf7158809cf4f3c.
  const Key key = make_key({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15,
                            0x88, 0x09, 0xcf, 0x4f, 0x3c});
  const auto rk = expand_key(key);
  // w4 = a0fafe17 (first word of round key 1).
  EXPECT_EQ(rk[1][0], 0xa0);
  EXPECT_EQ(rk[1][1], 0xfa);
  EXPECT_EQ(rk[1][2], 0xfe);
  EXPECT_EQ(rk[1][3], 0x17);
  // w43 = b6630ca6 (last word of round key 10).
  EXPECT_EQ(rk[10][12], 0xb6);
  EXPECT_EQ(rk[10][13], 0x63);
  EXPECT_EQ(rk[10][14], 0x0c);
  EXPECT_EQ(rk[10][15], 0xa6);
}

TEST(Aes128, Fips197AppendixBVector) {
  const Key key = make_key({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15,
                            0x88, 0x09, 0xcf, 0x4f, 0x3c});
  const Block pt = make_block({0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98,
                               0xa2, 0xe0, 0x37, 0x07, 0x34});
  const Block expected = make_block({0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11,
                                     0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32});
  EXPECT_EQ(encrypt(key, pt), expected);
}

TEST(Aes128, Fips197AppendixCVector) {
  // C.1: key 000102...0f, plaintext 00112233445566778899aabbccddeeff.
  Key key{};
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  Block pt{};
  for (int i = 0; i < 16; ++i) {
    pt[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x11 * i);
  }
  const Block expected = make_block({0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd,
                                     0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a});
  EXPECT_EQ(encrypt(key, pt), expected);
}

TEST(Aes128, Sp80038aEcbVector) {
  // NIST SP800-38A F.1.1 ECB-AES128 block #1.
  const Key key = make_key({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15,
                            0x88, 0x09, 0xcf, 0x4f, 0x3c});
  const Block pt = make_block({0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e,
                               0x11, 0x73, 0x93, 0x17, 0x2a});
  const Block expected = make_block({0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e,
                                     0xca, 0xf3, 0x24, 0x66, 0xef, 0x97});
  EXPECT_EQ(encrypt(key, pt), expected);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  emts::Rng rng{77};
  for (int trial = 0; trial < 50; ++trial) {
    Key key{};
    Block pt{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u32());
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u32());
    EXPECT_EQ(decrypt(key, encrypt(key, pt)), pt);
  }
}

TEST(Aes128, TraceIsConsistentWithEncrypt) {
  emts::Rng rng{88};
  Key key{};
  Block pt{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u32());
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u32());
  const auto trace = encrypt_traced(key, pt);
  EXPECT_EQ(trace.state[kNumRounds], encrypt(key, pt));
  // state[0] must be pt ^ k0.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(trace.state[0][i], static_cast<std::uint8_t>(pt[i] ^ trace.round_key[0][i]));
  }
  // Final round: state[10] = ShiftRows(SubBytes(state[9])) ^ k10.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(trace.state[10][i],
              static_cast<std::uint8_t>(trace.after_shiftrows[10][i] ^ trace.round_key[10][i]));
  }
}

TEST(Aes128, AvalancheEffect) {
  // Flipping one plaintext bit should flip ~half the ciphertext bits.
  const Key key = make_key({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15,
                            0x88, 0x09, 0xcf, 0x4f, 0x3c});
  emts::Rng rng{99};
  double total_hd = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u32());
    Block flipped = pt;
    flipped[rng.uniform_below(16)] ^= static_cast<std::uint8_t>(1u << rng.uniform_below(8));
    total_hd += hamming_distance(encrypt(key, pt), encrypt(key, flipped));
  }
  const double avg = total_hd / trials;
  EXPECT_GT(avg, 56.0);
  EXPECT_LT(avg, 72.0);
}

TEST(Hamming, DistanceAndWeight) {
  Block a{};
  Block b{};
  EXPECT_EQ(hamming_distance(a, b), 0);
  EXPECT_EQ(hamming_weight(a), 0);
  b[0] = 0xff;
  b[15] = 0x0f;
  EXPECT_EQ(hamming_distance(a, b), 12);
  EXPECT_EQ(hamming_weight(b), 12);
}

class AesKat : public ::testing::TestWithParam<int> {};

// Encrypt-decrypt bijection over structured patterns (all-zeros, all-ones,
// walking bytes).
TEST_P(AesKat, RoundTripStructuredPatterns) {
  const int pattern = GetParam();
  Key key{};
  Block pt{};
  for (std::size_t i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>((pattern * 17 + static_cast<int>(i) * 31) & 0xff);
    pt[i] = static_cast<std::uint8_t>((pattern * 73 + static_cast<int>(i) * 11) & 0xff);
  }
  EXPECT_EQ(decrypt(key, encrypt(key, pt)), pt);
}

INSTANTIATE_TEST_SUITE_P(Patterns, AesKat, ::testing::Range(0, 16));

}  // namespace
}  // namespace emts::aes
