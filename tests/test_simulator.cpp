#include "netlist/simulator.hpp"

#include <gtest/gtest.h>

#include "netlist/builders.hpp"
#include "util/assert.hpp"

namespace emts::netlist {
namespace {

TEST(Simulator, TieCellsSettleAtConstruction) {
  Netlist nl;
  const NetId hi = nl.add_net("hi");
  const NetId lo = nl.add_net("lo");
  nl.add_cell(CellType::kTieHi, {}, hi);
  nl.add_cell(CellType::kTieLo, {}, lo);
  Simulator sim{nl};
  EXPECT_TRUE(sim.value(hi));
  EXPECT_FALSE(sim.value(lo));
}

TEST(Simulator, InverterChainPropagates) {
  Netlist nl;
  const NetId in = nl.add_net("in");
  NetId prev = in;
  std::vector<NetId> stages;
  for (int i = 0; i < 5; ++i) {
    const NetId out = nl.add_net();
    nl.add_cell(CellType::kInv, {prev}, out);
    stages.push_back(out);
    prev = out;
  }
  Simulator sim{nl};
  // in=0 -> stages alternate 1,0,1,0,1.
  EXPECT_TRUE(sim.value(stages[0]));
  EXPECT_FALSE(sim.value(stages[1]));
  EXPECT_TRUE(sim.value(stages[4]));

  sim.set_input(in, true);
  sim.settle();
  EXPECT_FALSE(sim.value(stages[0]));
  EXPECT_TRUE(sim.value(stages[1]));
  EXPECT_FALSE(sim.value(stages[4]));
}

TEST(Simulator, SetInputRejectsDrivenNet) {
  Netlist nl;
  const NetId in = nl.add_net();
  const NetId out = nl.add_net();
  nl.add_cell(CellType::kInv, {in}, out);
  Simulator sim{nl};
  EXPECT_THROW(sim.set_input(out, true), emts::precondition_error);
}

TEST(Simulator, CombinationalLoopDetected) {
  // Cross-coupled inverters form an oscillator when poked.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_cell(CellType::kInv, {a}, b);
  EXPECT_THROW(
      {
        nl.add_cell(CellType::kInv, {b}, a);
        Simulator sim{nl};
      },
      emts::precondition_error);
}

TEST(Simulator, DffSamplesOnClockEdgeOnly) {
  Netlist nl;
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  nl.add_cell(CellType::kDff, {d}, q);
  Simulator sim{nl};
  sim.set_input(d, true);
  sim.settle();
  EXPECT_FALSE(sim.value(q)) << "flop must not update without a clock edge";
  sim.clock_edge();
  EXPECT_TRUE(sim.value(q));
  sim.set_input(d, false);
  sim.clock_edge();
  EXPECT_FALSE(sim.value(q));
}

TEST(Simulator, TwoPhaseEdgeSemanticsInShiftChain) {
  // A 3-deep shift chain must move exactly one stage per edge; a simulator
  // that updates flops in order would shoot the bit through in one edge.
  Netlist nl;
  const NetId in = nl.add_net("in");
  const auto sr = build_shift_register(nl, 3, in);
  Simulator sim{nl};
  sim.set_input(in, true);
  sim.settle();
  sim.clock_edge();
  EXPECT_TRUE(sim.value(sr.q[0]));
  EXPECT_FALSE(sim.value(sr.q[1]));
  EXPECT_FALSE(sim.value(sr.q[2]));
  sim.set_input(in, false);
  sim.clock_edge();
  EXPECT_FALSE(sim.value(sr.q[0]));
  EXPECT_TRUE(sim.value(sr.q[1]));
  sim.clock_edge();
  EXPECT_TRUE(sim.value(sr.q[2]));
}

TEST(Simulator, ReadWriteWord) {
  Netlist nl;
  std::vector<NetId> bus;
  for (int i = 0; i < 8; ++i) bus.push_back(nl.add_net());
  Simulator sim{nl};
  sim.set_word(bus, 0xa5);
  sim.settle();
  EXPECT_EQ(sim.read_word(bus), 0xa5u);
}

TEST(Simulator, ToggleCountingTracksActivity) {
  Netlist nl;
  const NetId in = nl.add_net();
  const NetId out = nl.add_net();
  nl.add_cell(CellType::kInv, {in}, out);
  Simulator sim{nl};
  const auto base = sim.total_toggles();
  sim.set_input(in, true);
  sim.settle();
  EXPECT_EQ(sim.total_toggles(), base + 1);
  sim.set_input(in, true);  // no change -> no toggle
  sim.settle();
  EXPECT_EQ(sim.total_toggles(), base + 1);
}

TEST(Simulator, CycleTogglesResetOnClockEdge) {
  Netlist nl;
  const NetId en = nl.add_net("en");
  const auto bank = build_toggle_bank(nl, 4, en);
  Simulator sim{nl};
  sim.set_input(en, true);
  sim.settle();
  sim.clock_edge();
  // 4 flops toggled plus 4 XOR gates recomputed.
  EXPECT_GE(sim.last_cycle_toggles().size(), 8u);
  EXPECT_GT(sim.last_cycle_charge_fc(), 0.0);
  sim.set_input(en, false);
  sim.clock_edge();
  sim.clock_edge();
  EXPECT_EQ(sim.last_cycle_toggles().size(), 0u);
  (void)bank;
}

TEST(Simulator, ToggleTimesFollowLogicDepth) {
  Netlist nl;
  const NetId in = nl.add_net();
  const NetId mid = nl.add_net();
  const NetId out = nl.add_net();
  nl.add_cell(CellType::kInv, {in}, mid);
  nl.add_cell(CellType::kInv, {mid}, out);
  Simulator sim{nl};
  sim.clock_edge();  // clear cycle toggles
  sim.set_input(in, true);
  sim.settle();
  const auto& toggles = sim.last_cycle_toggles();
  ASSERT_EQ(toggles.size(), 2u);
  EXPECT_LT(toggles[0].time_ps, toggles[1].time_ps);
}

TEST(Simulator, ResetRestoresInitialState) {
  Netlist nl;
  const NetId d = nl.add_net();
  const NetId q = nl.add_net();
  nl.add_cell(CellType::kDff, {d}, q);
  Simulator sim{nl};
  sim.set_input(d, true);
  sim.clock_edge();
  EXPECT_TRUE(sim.value(q));
  sim.reset();
  EXPECT_FALSE(sim.value(q));
  EXPECT_EQ(sim.cycle_count(), 0u);
  EXPECT_EQ(sim.last_cycle_toggles().size(), 0u);
}

// ---- builders ----

TEST(Builders, CounterCountsBinary) {
  Netlist nl;
  const NetId en = nl.add_net("en");
  const auto cnt = build_counter(nl, 4, en);
  Simulator sim{nl};
  sim.set_input(en, true);
  sim.settle();
  for (std::uint64_t i = 1; i <= 20; ++i) {
    sim.clock_edge();
    EXPECT_EQ(sim.read_word(cnt.bits), i & 0xf) << "cycle " << i;
  }
}

TEST(Builders, CounterHoldsWhenDisabled) {
  Netlist nl;
  const NetId en = nl.add_net("en");
  const auto cnt = build_counter(nl, 3, en);
  Simulator sim{nl};
  sim.set_input(en, true);
  sim.settle();
  sim.clock_edge();
  sim.clock_edge();
  sim.set_input(en, false);
  sim.settle();
  const auto held = sim.read_word(cnt.bits);
  for (int i = 0; i < 5; ++i) sim.clock_edge();
  EXPECT_EQ(sim.read_word(cnt.bits), held);
}

TEST(Builders, CounterBitKDividesByTwoToKPlusOne) {
  Netlist nl;
  const NetId en = nl.add_net("en");
  const auto cnt = build_counter(nl, 6, en);
  Simulator sim{nl};
  sim.set_input(en, true);
  sim.settle();
  // bit 2 toggles every 4 cycles -> period 8 cycles.
  std::vector<bool> bit2;
  for (int i = 0; i < 32; ++i) {
    sim.clock_edge();
    bit2.push_back(sim.value(cnt.bits[2]));
  }
  int transitions = 0;
  for (std::size_t i = 1; i < bit2.size(); ++i) transitions += (bit2[i] != bit2[i - 1]);
  EXPECT_EQ(transitions, 8);  // 32 cycles / 4 per half-period
}

TEST(Builders, LfsrLeavesZeroStateAndHasLongPeriod) {
  Netlist nl;
  const auto lfsr = build_lfsr(nl, 8, {3, 4, 5, 7});
  Simulator sim{nl};
  const auto zero = sim.read_word(lfsr.state);
  EXPECT_EQ(zero, 0u);
  std::vector<std::uint64_t> seen;
  std::uint64_t period = 0;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    sim.clock_edge();
    const auto s = sim.read_word(lfsr.state);
    if (s == zero) {
      period = i;
      break;
    }
  }
  EXPECT_GT(period, 50u) << "LFSR period suspiciously short";
}

TEST(Builders, LfsrIsDeterministic) {
  Netlist nl1;
  const auto l1 = build_lfsr(nl1, 8, {3, 4, 5, 7});
  Netlist nl2;
  const auto l2 = build_lfsr(nl2, 8, {3, 4, 5, 7});
  Simulator s1{nl1};
  Simulator s2{nl2};
  for (int i = 0; i < 50; ++i) {
    s1.clock_edge();
    s2.clock_edge();
    EXPECT_EQ(s1.read_word(l1.state), s2.read_word(l2.state));
  }
}

TEST(Builders, ToggleBankFlipsEveryCycleWhenEnabled) {
  Netlist nl;
  const NetId en = nl.add_net("en");
  const auto bank = build_toggle_bank(nl, 8, en);
  Simulator sim{nl};
  sim.set_input(en, true);
  sim.settle();
  sim.clock_edge();
  EXPECT_EQ(sim.read_word(bank.q), 0xffu);
  sim.clock_edge();
  EXPECT_EQ(sim.read_word(bank.q), 0x00u);
  sim.clock_edge();
  EXPECT_EQ(sim.read_word(bank.q), 0xffu);
}

TEST(Builders, AndOrXorTrees) {
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(nl.add_net());
  const NetId and_out = build_and_tree(nl, ins);
  const NetId or_out = build_or_tree(nl, ins);
  const NetId xor_out = build_xor_tree(nl, ins);
  Simulator sim{nl};

  sim.set_word(ins, 0x1f);
  sim.settle();
  EXPECT_TRUE(sim.value(and_out));
  EXPECT_TRUE(sim.value(or_out));
  EXPECT_TRUE(sim.value(xor_out));  // 5 ones -> odd parity

  sim.set_word(ins, 0x03);
  sim.settle();
  EXPECT_FALSE(sim.value(and_out));
  EXPECT_TRUE(sim.value(or_out));
  EXPECT_FALSE(sim.value(xor_out));  // 2 ones -> even parity

  sim.set_word(ins, 0x00);
  sim.settle();
  EXPECT_FALSE(sim.value(or_out));
}

TEST(Builders, SingleInputTreesAreIdentity) {
  Netlist nl;
  const NetId in = nl.add_net();
  EXPECT_EQ(build_and_tree(nl, {in}), in);
  EXPECT_EQ(build_xor_tree(nl, {in}), in);
}

class EqualsConstCase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EqualsConstCase, FiresOnlyOnExactMatch) {
  const std::uint64_t target = GetParam();
  Netlist nl;
  std::vector<NetId> bits;
  for (int i = 0; i < 8; ++i) bits.push_back(nl.add_net());
  const NetId hit = build_equals_const(nl, bits, target);
  Simulator sim{nl};
  for (std::uint64_t v = 0; v < 256; ++v) {
    sim.set_word(bits, v);
    sim.settle();
    EXPECT_EQ(sim.value(hit), v == target) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, EqualsConstCase,
                         ::testing::Values<std::uint64_t>(0x00, 0x01, 0x80, 0xa5, 0xff));

TEST(Builders, RejectDegenerateParameters) {
  Netlist nl;
  const NetId n = nl.add_net();
  EXPECT_THROW(build_shift_register(nl, 0, n), emts::precondition_error);
  EXPECT_THROW(build_lfsr(nl, 1, {}), emts::precondition_error);
  EXPECT_THROW(build_lfsr(nl, 4, {9}), emts::precondition_error);
  EXPECT_THROW(build_counter(nl, 0, n), emts::precondition_error);
  EXPECT_THROW(build_and_tree(nl, {}), emts::precondition_error);
  EXPECT_THROW(build_equals_const(nl, {}, 0), emts::precondition_error);
}

}  // namespace
}  // namespace emts::netlist
