#include "dsp/spectrum.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::dsp {
namespace {

std::vector<double> tone(double freq, double fs, std::size_t n, double amplitude) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amplitude * std::sin(2.0 * units::pi * freq * static_cast<double>(i) / fs);
  }
  return out;
}

TEST(Spectrum, ToneAmplitudeRecoveredAtItsBin) {
  const double fs = 1000.0;
  const std::size_t n = 1024;
  // Bin-exact tone: 125 Hz = bin 128 of 1024 at fs 1000.
  const auto sig = tone(125.0, fs, n, 3.0);
  const auto spec = amplitude_spectrum(sig, fs);
  const std::size_t k = spec.bin_of(125.0);
  EXPECT_NEAR(spec.frequency[k], 125.0, 1e-9);
  EXPECT_NEAR(spec.amplitude[k], 3.0, 0.01);
}

TEST(Spectrum, AmplitudeCorrectForAllWindows) {
  const double fs = 1024.0;
  const std::size_t n = 1024;
  const auto sig = tone(64.0, fs, n, 2.0);
  for (auto kind : {WindowKind::kRectangular, WindowKind::kHann, WindowKind::kHamming,
                    WindowKind::kBlackman}) {
    SpectrumOptions opt;
    opt.window = kind;
    const auto spec = amplitude_spectrum(sig, fs, opt);
    EXPECT_NEAR(spec.amplitude[spec.bin_of(64.0)], 2.0, 0.05)
        << "window kind " << static_cast<int>(kind);
  }
}

TEST(Spectrum, DcRemovedByDefault) {
  std::vector<double> sig(512, 5.0);
  const auto spec = amplitude_spectrum(sig, 100.0);
  EXPECT_NEAR(spec.amplitude[0], 0.0, 1e-9);
}

TEST(Spectrum, DcKeptWhenRequested) {
  std::vector<double> sig(512, 5.0);
  SpectrumOptions opt;
  opt.remove_mean = false;
  opt.window = WindowKind::kRectangular;
  const auto spec = amplitude_spectrum(sig, 100.0, opt);
  EXPECT_NEAR(spec.amplitude[0], 5.0, 1e-9);
}

TEST(Spectrum, FrequencyAxisSpansToNyquist) {
  const auto spec = amplitude_spectrum(tone(10.0, 1000.0, 256, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(spec.frequency.front(), 0.0);
  EXPECT_DOUBLE_EQ(spec.frequency.back(), 500.0);
  EXPECT_EQ(spec.size(), 129u);
}

TEST(Spectrum, BinOfClampsOutOfRange) {
  const auto spec = amplitude_spectrum(tone(10.0, 1000.0, 256, 1.0), 1000.0);
  EXPECT_EQ(spec.bin_of(-5.0), 0u);
  EXPECT_EQ(spec.bin_of(1e9), spec.size() - 1);
}

TEST(Spectrum, TwoTonesBothVisible) {
  const double fs = 1024.0;
  const std::size_t n = 2048;
  auto sig = tone(64.0, fs, n, 1.0);
  const auto t2 = tone(200.0, fs, n, 0.5);
  for (std::size_t i = 0; i < n; ++i) sig[i] += t2[i];
  const auto spec = amplitude_spectrum(sig, fs);
  EXPECT_NEAR(spec.amplitude[spec.bin_of(64.0)], 1.0, 0.05);
  EXPECT_NEAR(spec.amplitude[spec.bin_of(200.0)], 0.5, 0.05);
}

TEST(Spectrum, MeanSpectrumAveragesNoiseDown) {
  emts::Rng rng{55};
  const double fs = 1000.0;
  const std::size_t n = 512;
  std::vector<std::vector<double>> noisy;
  for (int t = 0; t < 32; ++t) {
    auto sig = tone(125.0, fs, n, 1.0);
    for (double& v : sig) v += rng.gaussian(0.0, 1.0);
    noisy.push_back(std::move(sig));
  }
  const auto avg = mean_spectrum(noisy, fs);
  const auto single = amplitude_spectrum(noisy.front(), fs);
  // Tone preserved.
  EXPECT_NEAR(avg.amplitude[avg.bin_of(125.0)], 1.0, 0.15);
  // Averaged noise floor well below a tone amplitude.
  double floor_sum = 0.0;
  std::size_t floor_count = 0;
  for (std::size_t k = 5; k < avg.size(); ++k) {
    if (std::abs(avg.frequency[k] - 125.0) < 20.0) continue;
    floor_sum += avg.amplitude[k];
    ++floor_count;
  }
  EXPECT_LT(floor_sum / static_cast<double>(floor_count), 0.25);
  (void)single;
}

TEST(Spectrum, MeanSpectrumRejectsRaggedInput) {
  EXPECT_THROW(mean_spectrum({std::vector<double>(64, 0.0), std::vector<double>(32, 0.0)}, 1.0),
               emts::precondition_error);
}

TEST(FindPeaks, DetectsInjectedTonesInBinOrder) {
  const double fs = 1024.0;
  const std::size_t n = 2048;
  auto sig = tone(64.0, fs, n, 1.0);
  const auto t2 = tone(200.0, fs, n, 2.0);
  for (std::size_t i = 0; i < n; ++i) sig[i] += t2[i];
  const auto spec = amplitude_spectrum(sig, fs);
  const auto peaks = find_peaks(spec, 0.2);
  ASSERT_GE(peaks.size(), 2u);
  // Bin-ordered: the 64 Hz tone comes first even though 200 Hz is stronger.
  EXPECT_NEAR(peaks[0].frequency, 64.0, 1.0);
  EXPECT_NEAR(peaks[1].frequency, 200.0, 1.0);
  EXPECT_GT(peaks[1].amplitude, peaks[0].amplitude);
}

TEST(FindPeaks, RespectsMaxPeaks) {
  emts::Rng rng{77};
  std::vector<double> sig(1024);
  for (double& v : sig) v = rng.gaussian();
  const auto spec = amplitude_spectrum(sig, 1000.0);
  const auto peaks = find_peaks(spec, 0.0, 5);
  EXPECT_LE(peaks.size(), 5u);
  for (std::size_t i = 1; i < peaks.size(); ++i) EXPECT_LT(peaks[i - 1].bin, peaks[i].bin);
}

// Regression: truncation must drop the weakest peaks, not the highest
// frequencies — a strong Trojan carrier high in the band has to survive a
// crowded low band.
TEST(FindPeaks, TruncationKeepsTheStrongestPeaks) {
  const double fs = 1024.0;
  const std::size_t n = 2048;
  // Six weak low-frequency tones, one strong tone near the top of the band.
  std::vector<double> sig(n, 0.0);
  for (double f : {24.0, 40.0, 56.0, 72.0, 88.0, 104.0}) {
    const auto t = tone(f, fs, n, 0.5);
    for (std::size_t i = 0; i < n; ++i) sig[i] += t[i];
  }
  const auto carrier = tone(480.0, fs, n, 3.0);
  for (std::size_t i = 0; i < n; ++i) sig[i] += carrier[i];

  const auto spec = amplitude_spectrum(sig, fs);
  const auto peaks = find_peaks(spec, 0.1, 4);
  ASSERT_EQ(peaks.size(), 4u);
  // The strong high-band carrier must be among the survivors...
  bool carrier_kept = false;
  for (const auto& p : peaks) carrier_kept |= std::abs(p.frequency - 480.0) < 1.0;
  EXPECT_TRUE(carrier_kept);
  // ...and the survivors come back bin-ordered.
  for (std::size_t i = 1; i < peaks.size(); ++i) EXPECT_LT(peaks[i - 1].bin, peaks[i].bin);
  // Every kept peak is at least as strong as every qualifying peak that was
  // dropped.
  const auto all = find_peaks(spec, 0.1, 1000);
  ASSERT_GT(all.size(), 4u);
  double weakest_kept = peaks[0].amplitude;
  for (const auto& p : peaks) weakest_kept = std::min(weakest_kept, p.amplitude);
  std::size_t stronger_than_weakest_kept = 0;
  for (const auto& p : all) {
    if (p.amplitude > weakest_kept) ++stronger_than_weakest_kept;
  }
  EXPECT_LE(stronger_than_weakest_kept, 3u);
}

TEST(FindPeaks, IntoVariantMatchesAndReusesItsBuffer) {
  const double fs = 1024.0;
  auto sig = tone(64.0, fs, 2048, 1.0);
  const auto t2 = tone(200.0, fs, 2048, 2.0);
  for (std::size_t i = 0; i < sig.size(); ++i) sig[i] += t2[i];
  const auto spec = amplitude_spectrum(sig, fs);

  const auto copied = find_peaks(spec, 0.2);
  std::vector<SpectralPeak> reused;
  find_peaks_into(spec, 0.2, reused);
  ASSERT_EQ(reused.size(), copied.size());
  for (std::size_t i = 0; i < copied.size(); ++i) {
    EXPECT_EQ(reused[i].bin, copied[i].bin);
    EXPECT_EQ(reused[i].frequency, copied[i].frequency);
    EXPECT_EQ(reused[i].amplitude, copied[i].amplitude);
  }
  // Second call clears before writing — no stale accumulation.
  find_peaks_into(spec, 0.2, reused);
  EXPECT_EQ(reused.size(), copied.size());
}

// The analyzer's cached window/plan/buffers must not move any output by a
// single bit relative to the one-shot helpers — the monitor's scores depend
// on it.
TEST(SpectrumAnalyzer, AnalyzeMatchesAmplitudeSpectrumBitwise) {
  emts::Rng rng{88};
  std::vector<double> sig(1000);  // non-power-of-two: exercises padding
  for (double& v : sig) v = rng.gaussian();

  SpectrumAnalyzer analyzer;
  for (int pass = 0; pass < 3; ++pass) {
    const Spectrum& cached = analyzer.analyze(sig, 1000.0);
    const Spectrum copied = amplitude_spectrum(sig, 1000.0);
    ASSERT_EQ(cached.size(), copied.size());
    for (std::size_t k = 0; k < copied.size(); ++k) {
      EXPECT_EQ(cached.amplitude[k], copied.amplitude[k]) << "pass " << pass << " bin " << k;
      EXPECT_EQ(cached.frequency[k], copied.frequency[k]) << "pass " << pass << " bin " << k;
    }
  }
  EXPECT_EQ(analyzer.warmups(), 1u);  // same shape throughout: one cache build
}

// The streamed mean path packs traces two-per-FFT (two-for-one real
// transform), so it matches mean_spectrum to floating-point rounding rather
// than bitwise. Seven traces (odd) also exercise the leftover-signal flush
// in mean().
TEST(SpectrumAnalyzer, StreamedMeanMatchesMeanSpectrumToRounding) {
  emts::Rng rng{89};
  std::vector<std::vector<double>> signals;
  for (int t = 0; t < 7; ++t) {
    auto sig = tone(125.0, 1000.0, 512, 1.0);
    for (double& v : sig) v += rng.gaussian(0.0, 0.5);
    signals.push_back(std::move(sig));
  }
  const Spectrum copied = mean_spectrum(signals, 1000.0);

  SpectrumAnalyzer analyzer;
  analyzer.begin(512, 1000.0);
  for (const auto& sig : signals) analyzer.add(sig);
  const Spectrum& streamed = analyzer.mean();

  ASSERT_EQ(streamed.size(), copied.size());
  double peak = 0.0;
  for (double a : copied.amplitude) peak = std::max(peak, a);
  for (std::size_t k = 0; k < copied.size(); ++k) {
    // Tight absolute bound relative to the spectrum's scale: the packed and
    // per-signal transforms differ only by rounding inside the butterflies.
    EXPECT_NEAR(streamed.amplitude[k], copied.amplitude[k], 1e-12 * peak) << "bin " << k;
  }

  // A second streamed pass over the same traces reproduces itself exactly.
  std::vector<double> first_pass(streamed.amplitude);
  analyzer.begin(512, 1000.0);
  for (const auto& sig : signals) analyzer.add(sig);
  const Spectrum& again = analyzer.mean();
  for (std::size_t k = 0; k < first_pass.size(); ++k) {
    EXPECT_EQ(again.amplitude[k], first_pass[k]) << "bin " << k;
  }
}

TEST(SpectrumAnalyzer, RewarmsOnShapeChangeOnly) {
  SpectrumAnalyzer analyzer;
  analyzer.analyze(tone(10.0, 1000.0, 256, 1.0), 1000.0);
  analyzer.analyze(tone(20.0, 1000.0, 256, 1.0), 1000.0);
  EXPECT_EQ(analyzer.warmups(), 1u);
  analyzer.analyze(tone(10.0, 1000.0, 512, 1.0), 1000.0);  // new length
  EXPECT_EQ(analyzer.warmups(), 2u);
  analyzer.analyze(tone(10.0, 2000.0, 512, 1.0), 2000.0);  // new rate
  EXPECT_EQ(analyzer.warmups(), 3u);
}

TEST(FindPeaks, EmptyWhenThresholdAboveEverything) {
  const auto spec = amplitude_spectrum(tone(64.0, 1024.0, 1024, 1.0), 1024.0);
  EXPECT_TRUE(find_peaks(spec, 100.0).empty());
}

}  // namespace
}  // namespace emts::dsp
