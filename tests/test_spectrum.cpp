#include "dsp/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::dsp {
namespace {

std::vector<double> tone(double freq, double fs, std::size_t n, double amplitude) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amplitude * std::sin(2.0 * units::pi * freq * static_cast<double>(i) / fs);
  }
  return out;
}

TEST(Spectrum, ToneAmplitudeRecoveredAtItsBin) {
  const double fs = 1000.0;
  const std::size_t n = 1024;
  // Bin-exact tone: 125 Hz = bin 128 of 1024 at fs 1000.
  const auto sig = tone(125.0, fs, n, 3.0);
  const auto spec = amplitude_spectrum(sig, fs);
  const std::size_t k = spec.bin_of(125.0);
  EXPECT_NEAR(spec.frequency[k], 125.0, 1e-9);
  EXPECT_NEAR(spec.amplitude[k], 3.0, 0.01);
}

TEST(Spectrum, AmplitudeCorrectForAllWindows) {
  const double fs = 1024.0;
  const std::size_t n = 1024;
  const auto sig = tone(64.0, fs, n, 2.0);
  for (auto kind : {WindowKind::kRectangular, WindowKind::kHann, WindowKind::kHamming,
                    WindowKind::kBlackman}) {
    SpectrumOptions opt;
    opt.window = kind;
    const auto spec = amplitude_spectrum(sig, fs, opt);
    EXPECT_NEAR(spec.amplitude[spec.bin_of(64.0)], 2.0, 0.05)
        << "window kind " << static_cast<int>(kind);
  }
}

TEST(Spectrum, DcRemovedByDefault) {
  std::vector<double> sig(512, 5.0);
  const auto spec = amplitude_spectrum(sig, 100.0);
  EXPECT_NEAR(spec.amplitude[0], 0.0, 1e-9);
}

TEST(Spectrum, DcKeptWhenRequested) {
  std::vector<double> sig(512, 5.0);
  SpectrumOptions opt;
  opt.remove_mean = false;
  opt.window = WindowKind::kRectangular;
  const auto spec = amplitude_spectrum(sig, 100.0, opt);
  EXPECT_NEAR(spec.amplitude[0], 5.0, 1e-9);
}

TEST(Spectrum, FrequencyAxisSpansToNyquist) {
  const auto spec = amplitude_spectrum(tone(10.0, 1000.0, 256, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(spec.frequency.front(), 0.0);
  EXPECT_DOUBLE_EQ(spec.frequency.back(), 500.0);
  EXPECT_EQ(spec.size(), 129u);
}

TEST(Spectrum, BinOfClampsOutOfRange) {
  const auto spec = amplitude_spectrum(tone(10.0, 1000.0, 256, 1.0), 1000.0);
  EXPECT_EQ(spec.bin_of(-5.0), 0u);
  EXPECT_EQ(spec.bin_of(1e9), spec.size() - 1);
}

TEST(Spectrum, TwoTonesBothVisible) {
  const double fs = 1024.0;
  const std::size_t n = 2048;
  auto sig = tone(64.0, fs, n, 1.0);
  const auto t2 = tone(200.0, fs, n, 0.5);
  for (std::size_t i = 0; i < n; ++i) sig[i] += t2[i];
  const auto spec = amplitude_spectrum(sig, fs);
  EXPECT_NEAR(spec.amplitude[spec.bin_of(64.0)], 1.0, 0.05);
  EXPECT_NEAR(spec.amplitude[spec.bin_of(200.0)], 0.5, 0.05);
}

TEST(Spectrum, MeanSpectrumAveragesNoiseDown) {
  emts::Rng rng{55};
  const double fs = 1000.0;
  const std::size_t n = 512;
  std::vector<std::vector<double>> noisy;
  for (int t = 0; t < 32; ++t) {
    auto sig = tone(125.0, fs, n, 1.0);
    for (double& v : sig) v += rng.gaussian(0.0, 1.0);
    noisy.push_back(std::move(sig));
  }
  const auto avg = mean_spectrum(noisy, fs);
  const auto single = amplitude_spectrum(noisy.front(), fs);
  // Tone preserved.
  EXPECT_NEAR(avg.amplitude[avg.bin_of(125.0)], 1.0, 0.15);
  // Averaged noise floor well below a tone amplitude.
  double floor_sum = 0.0;
  std::size_t floor_count = 0;
  for (std::size_t k = 5; k < avg.size(); ++k) {
    if (std::abs(avg.frequency[k] - 125.0) < 20.0) continue;
    floor_sum += avg.amplitude[k];
    ++floor_count;
  }
  EXPECT_LT(floor_sum / static_cast<double>(floor_count), 0.25);
  (void)single;
}

TEST(Spectrum, MeanSpectrumRejectsRaggedInput) {
  EXPECT_THROW(mean_spectrum({std::vector<double>(64, 0.0), std::vector<double>(32, 0.0)}, 1.0),
               emts::precondition_error);
}

TEST(FindPeaks, DetectsInjectedTonesStrongestFirst) {
  const double fs = 1024.0;
  const std::size_t n = 2048;
  auto sig = tone(64.0, fs, n, 1.0);
  const auto t2 = tone(200.0, fs, n, 2.0);
  for (std::size_t i = 0; i < n; ++i) sig[i] += t2[i];
  const auto spec = amplitude_spectrum(sig, fs);
  const auto peaks = find_peaks(spec, 0.2);
  ASSERT_GE(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].frequency, 200.0, 1.0);
  EXPECT_NEAR(peaks[1].frequency, 64.0, 1.0);
  EXPECT_GT(peaks[0].amplitude, peaks[1].amplitude);
}

TEST(FindPeaks, RespectsMaxPeaks) {
  emts::Rng rng{77};
  std::vector<double> sig(1024);
  for (double& v : sig) v = rng.gaussian();
  const auto spec = amplitude_spectrum(sig, 1000.0);
  const auto peaks = find_peaks(spec, 0.0, 5);
  EXPECT_LE(peaks.size(), 5u);
}

TEST(FindPeaks, EmptyWhenThresholdAboveEverything) {
  const auto spec = amplitude_spectrum(tone(64.0, 1024.0, 1024, 1.0), 1024.0);
  EXPECT_TRUE(find_peaks(spec, 100.0).empty());
}

}  // namespace
}  // namespace emts::dsp
