#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::linalg {
namespace {

TEST(SymmetricEigen, DiagonalMatrixReturnsSortedDiagonal) {
  const auto m = Matrix::from_rows({{1, 0, 0}, {0, 5, 0}, {0, 0, 3}});
  const auto eig = symmetric_eigen(m);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const auto m = Matrix::from_rows({{2, 1}, {1, 2}});
  const auto eig = symmetric_eigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
  // Eigenvector for λ=3 is (1,1)/sqrt(2) up to sign.
  const double ratio = eig.eigenvectors(0, 0) / eig.eigenvectors(1, 0);
  EXPECT_NEAR(ratio, 1.0, 1e-10);
}

TEST(SymmetricEigen, RejectsNonSquare) {
  EXPECT_THROW(symmetric_eigen(Matrix{2, 3}), emts::precondition_error);
}

TEST(SymmetricEigen, RejectsAsymmetric) {
  const auto m = Matrix::from_rows({{1, 2}, {0, 1}});
  EXPECT_THROW(symmetric_eigen(m), emts::precondition_error);
}

class RandomSymmetricEigen : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomSymmetricEigen, SatisfiesDefinitionAndOrthonormality) {
  const std::size_t n = GetParam();
  emts::Rng rng{emts::mix64(n)};
  Matrix a{n, n};
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.uniform(-2.0, 2.0);
      a(r, c) = v;
      a(c, r) = v;
    }

  const auto eig = symmetric_eigen(a);

  // A v_j = λ_j v_j for every pair.
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = eig.eigenvectors(i, j);
    const auto av = a * v;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig.eigenvalues[j] * v[i], 1e-8) << "n=" << n << " j=" << j;
    }
  }

  // Columns orthonormal.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j; k < n; ++k) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += eig.eigenvectors(i, j) * eig.eigenvectors(i, k);
      EXPECT_NEAR(acc, j == k ? 1.0 : 0.0, 1e-9);
    }
  }

  // Eigenvalues descending and trace preserved.
  double trace = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += eig.eigenvalues[i];
    if (i > 0) {
      EXPECT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i] - 1e-12);
    }
  }
  EXPECT_NEAR(trace, sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSymmetricEigen,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 16, 40));

TEST(SymmetricEigen, RankDeficientMatrixHasZeroEigenvalues) {
  // Outer product u u^T has rank 1: one eigenvalue ||u||^2, rest 0.
  const std::vector<double> u{1, 2, 3};
  Matrix m{3, 3};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = u[r] * u[c];
  const auto eig = symmetric_eigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 14.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 0.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 0.0, 1e-10);
}

TEST(SymmetricEigen, NegativeEigenvaluesHandled) {
  const auto m = Matrix::from_rows({{0, 1}, {1, 0}});
  const auto eig = symmetric_eigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], -1.0, 1e-12);
}

}  // namespace
}  // namespace emts::linalg
