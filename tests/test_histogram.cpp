#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::stats {
namespace {

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(5.5);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeValuesClampToEdges) {
  Histogram h{0.0, 1.0, 4};
  h.add(-100.0);
  h.add(100.0);
  h.add(1.0);  // hi edge clamps into last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, TotalAlwaysEqualsInsertions) {
  emts::Rng rng{21};
  Histogram h{-1.0, 1.0, 16};
  for (int i = 0; i < 1000; ++i) h.add(rng.gaussian());
  std::size_t sum = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.count(b);
  EXPECT_EQ(sum, 1000u);
  EXPECT_EQ(h.total(), 1000u);
}

TEST(Histogram, BinEdgesAndCenters) {
  Histogram h{0.0, 4.0, 4};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 2.5);
}

TEST(Histogram, ModeFindsFullestBin) {
  Histogram h{0.0, 3.0, 3};
  h.add_all({0.1, 1.5, 1.6, 1.7, 2.5});
  EXPECT_EQ(h.mode_bin(), 1u);
  EXPECT_DOUBLE_EQ(h.mode(), 1.5);
}

TEST(Histogram, RejectsEmptyRangeOrZeroBins) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), emts::precondition_error);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), emts::precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), emts::precondition_error);
}

TEST(Histogram, RenderMentionsEveryBin) {
  Histogram h{0.0, 2.0, 2};
  h.add_all({0.5, 1.5, 1.6});
  const std::string text = h.render(10);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[1, 2)"), std::string::npos);
}

TEST(Histogram, RenderPairRequiresSharedBinning) {
  Histogram a{0.0, 1.0, 4};
  Histogram b{0.0, 2.0, 4};
  EXPECT_THROW(Histogram::render_pair(a, b), emts::precondition_error);
}

TEST(Histogram, RenderPairShowsBothSeries) {
  Histogram red{0.0, 1.0, 2};
  Histogram blue{0.0, 1.0, 2};
  red.add(0.25);
  blue.add(0.75);
  const std::string text = Histogram::render_pair(red, blue, 10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
}

}  // namespace
}  // namespace emts::stats
