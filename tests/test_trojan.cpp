#include "trojan/trojan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/spectrum.hpp"
#include <set>

#include "netlist/simulator.hpp"
#include "trojan/a2_analog.hpp"
#include "trojan/t1_am_leak.hpp"
#include "trojan/t2_leakage.hpp"
#include "trojan/t3_cdma.hpp"
#include "trojan/t4_power_hog.hpp"
#include "util/assert.hpp"

namespace emts::trojan {
namespace {

aes::Key test_key() {
  return aes::Key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

TraceContext make_context(std::uint64_t trace_index = 0) {
  TraceContext ctx;
  ctx.key = test_key();
  ctx.trace_index = trace_index;
  return ctx;
}

// ---- Table I gate counts ----

TEST(TrojanSizes, MatchTableOne) {
  EXPECT_EQ(make_trojan(TrojanKind::kT1AmLeak)->cell_count(), 1657u);
  EXPECT_EQ(make_trojan(TrojanKind::kT2Leakage)->cell_count(), 2793u);
  EXPECT_EQ(make_trojan(TrojanKind::kT3Cdma)->cell_count(), 250u);
  EXPECT_EQ(make_trojan(TrojanKind::kT4PowerHog)->cell_count(), 2793u);
  EXPECT_EQ(make_trojan(TrojanKind::kA2Analog)->cell_count(), 0u);
}

TEST(TrojanSizes, T2EqualsT4AsInPaper) {
  EXPECT_EQ(make_trojan(TrojanKind::kT2Leakage)->cell_count(),
            make_trojan(TrojanKind::kT4PowerHog)->cell_count());
}

TEST(TrojanSizes, AreasPositiveAndOrdered) {
  const auto t3 = make_trojan(TrojanKind::kT3Cdma);
  const auto t2 = make_trojan(TrojanKind::kT2Leakage);
  const auto a2 = make_trojan(TrojanKind::kA2Analog);
  EXPECT_GT(t3->area_um2(), 0.0);
  EXPECT_GT(t2->area_um2(), t3->area_um2());
  EXPECT_LT(a2->area_um2(), t3->area_um2());  // A2 is by far the smallest
}

TEST(Factory, ProducesEveryKindWithMatchingKind) {
  for (TrojanKind kind : kAllTrojanKinds) {
    const auto t = make_trojan(kind);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->kind(), kind);
    EXPECT_FALSE(t->active());
    EXPECT_FALSE(t->name().empty());
  }
}

TEST(Factory, LabelsAreDistinct) {
  std::set<std::string> labels;
  for (TrojanKind kind : kAllTrojanKinds) labels.insert(kind_label(kind));
  EXPECT_EQ(labels.size(), 5u);
}

// ---- current signatures ----

double rms_of(const power::CurrentTrace& trace) {
  double acc = 0.0;
  for (double v : trace.samples()) acc += v * v;
  return std::sqrt(acc / static_cast<double>(trace.samples().size()));
}

TEST(Signatures, DormantIsMuchQuieterThanActive) {
  for (TrojanKind kind : kAllTrojanKinds) {
    const auto t = make_trojan(kind);
    const auto ctx = make_context();

    power::CurrentTrace dormant{ctx.clock, ctx.num_cycles};
    t->contribute(ctx, dormant);

    t->set_active(true);
    power::CurrentTrace active{ctx.clock, ctx.num_cycles};
    t->contribute(ctx, active);

    EXPECT_GT(rms_of(active), 5.0 * rms_of(dormant) + 1e-12) << kind_label(kind);
  }
}

TEST(Signatures, ContributionsAreDeterministicPerTraceIndex) {
  for (TrojanKind kind : kAllTrojanKinds) {
    const auto t = make_trojan(kind);
    t->set_active(true);
    const auto ctx = make_context(7);
    power::CurrentTrace a{ctx.clock, ctx.num_cycles};
    power::CurrentTrace b{ctx.clock, ctx.num_cycles};
    t->contribute(ctx, a);
    t->contribute(ctx, b);
    for (std::size_t i = 0; i < a.samples().size(); ++i) {
      ASSERT_DOUBLE_EQ(a.samples()[i], b.samples()[i]) << kind_label(kind);
    }
  }
}

TEST(T1, ActiveCurrentCarriesA750kHzTone) {
  const auto t1 = std::make_unique<T1AmLeak>();
  t1->set_active(true);
  const auto ctx = make_context(0);
  power::CurrentTrace trace{ctx.clock, ctx.num_cycles};
  t1->contribute(ctx, trace);
  const auto spec = dsp::amplitude_spectrum(trace.samples(), ctx.clock.sample_rate());
  // The 750 kHz bin (and its OOK sidebands) must dominate everything below
  // 10 MHz by a wide margin.
  const std::size_t carrier_bin = spec.bin_of(750e3);
  double best_other = 0.0;
  for (std::size_t k = 1; k < spec.bin_of(10e6); ++k) {
    if (k + 3 >= carrier_bin && k <= carrier_bin + 3) continue;
    best_other = std::max(best_other, spec.amplitude[k]);
  }
  EXPECT_GT(spec.amplitude[carrier_bin], 3.0 * best_other);
  EXPECT_GT(spec.amplitude[carrier_bin], 1e-3);  // mA-scale carrier
}

TEST(T1, OokFollowsKeyBits) {
  // Per-bit-period carrier RMS must track the broadcast key bit.
  const auto t1 = std::make_unique<T1AmLeak>();
  t1->set_active(true);
  const std::size_t cycles_per_bit = T1AmLeak::kCarrierPeriodsPerBit * 64;
  std::size_t loud = 0;
  std::size_t quiet = 0;
  for (std::uint64_t trace_index = 0; trace_index < 8; ++trace_index) {
    const auto ctx = make_context(trace_index);
    power::CurrentTrace trace{ctx.clock, ctx.num_cycles};
    t1->contribute(ctx, trace);
    const auto& s = trace.samples();
    const std::size_t samples_per_bit = cycles_per_bit * ctx.clock.samples_per_cycle;
    for (std::size_t start = 0; start + samples_per_bit <= s.size();
         start += samples_per_bit) {
      double acc = 0.0;
      for (std::size_t i = start; i < start + samples_per_bit; ++i) acc += s[i] * s[i];
      const double rms = std::sqrt(acc / static_cast<double>(samples_per_bit));
      const std::size_t cycle = start / ctx.clock.samples_per_cycle;
      const std::size_t bit_index =
          T1AmLeak::key_bit_index(trace_index, cycle, ctx.num_cycles);
      const bool bit = ((ctx.key[bit_index / 8] >> (bit_index % 8)) & 1u) != 0;
      if (bit) {
        EXPECT_GT(rms, 1e-3) << "bit=1 period must carry the carrier";
        ++loud;
      } else {
        EXPECT_LT(rms, 1e-3) << "bit=0 period must be (nearly) silent";
        ++quiet;
      }
    }
  }
  EXPECT_GT(loud, 0u);
  EXPECT_GT(quiet, 0u);
}

TEST(T1, CarrierFrequencyIs750kHz) {
  EXPECT_DOUBLE_EQ(T1AmLeak::carrier_hz(power::ClockSpec{}), 750e3);
}

TEST(T1, NetlistCarrierDividesBy64) {
  const T1AmLeak t1;
  const netlist::Netlist& nl = *t1.gate_netlist();
  netlist::Simulator sim{nl};
  sim.set_input(t1.enable_net(), true);
  sim.settle();
  // The carrier is counter bit 5: period 64 cycles.
  std::vector<bool> carrier;
  for (int i = 0; i < 128; ++i) {
    sim.clock_edge();
    carrier.push_back(sim.value(t1.carrier_net()));
  }
  int transitions = 0;
  for (std::size_t i = 1; i < carrier.size(); ++i) transitions += (carrier[i] != carrier[i - 1]);
  EXPECT_EQ(transitions, 4);  // 128 cycles / 32 per half-period
}

TEST(T2, LeakCurrentFollowsZeroKeyBits) {
  const auto t2 = std::make_unique<T2Leakage>();
  t2->set_active(true);
  const auto ctx = make_context(0);
  power::CurrentTrace trace{ctx.clock, ctx.num_cycles};
  t2->contribute(ctx, trace);

  const auto& s = trace.samples();
  // Key bit 0 of 0x2b is 1 -> first 64-cycle slot has no leak; find slots
  // whose mean differs.
  std::vector<double> slot_means;
  for (std::size_t slot = 0; slot < ctx.num_cycles / 64; ++slot) {
    double mean = 0.0;
    for (std::size_t i = slot * 512; i < (slot + 1) * 512; ++i) mean += s[i];
    slot_means.push_back(mean / 512.0);
  }
  // 0x2b = 00101011b: bits (lsb first) 1,1,0,1,0,1,0,0 -> slots 2,4,6,7 leak.
  EXPECT_LT(slot_means[0], slot_means[2]);
  EXPECT_LT(slot_means[1], slot_means[2]);
  EXPECT_GT(slot_means[4], slot_means[3]);
  EXPECT_GT(slot_means[6], slot_means[5]);
}

TEST(T2, NetlistShiftPacerFiresEvery64Cycles) {
  const T2Leakage t2;
  const netlist::Netlist& nl = *t2.gate_netlist();
  netlist::Simulator sim{nl};
  sim.set_input(t2.enable_net(), true);
  sim.settle();
  // The shift_now comparator output is the first primary output.
  const netlist::NetId shift_now = nl.primary_outputs().front();
  std::size_t fires = 0;
  for (int i = 0; i < 256; ++i) {
    sim.clock_edge();
    fires += sim.value(shift_now);
  }
  EXPECT_EQ(fires, 4u);  // 256 / 64
}

TEST(T3, LfsrMatrixPowerMatchesStepping) {
  std::uint16_t state = 0;
  for (std::uint64_t i = 0; i <= 300; ++i) {
    ASSERT_EQ(T3Cdma::lfsr_state_after(i), state) << "step " << i;
    state = T3Cdma::lfsr_step(state);
  }
  // Deep jump consistency: step from a matrix-computed state.
  const std::uint16_t deep = T3Cdma::lfsr_state_after(1000000);
  EXPECT_EQ(T3Cdma::lfsr_state_after(1000001), T3Cdma::lfsr_step(deep));
}

TEST(T3, MirrorMatchesGateLevelLfsr) {
  // The C++ mirror and the gate netlist must generate the same sequence.
  const T3Cdma t3;
  const netlist::Netlist& nl = *t3.gate_netlist();
  netlist::Simulator sim{nl};
  // Find the LFSR state nets by name.
  std::vector<netlist::NetId> state_nets(16);
  for (netlist::NetId n = 0; n < nl.net_count(); ++n) {
    const std::string& name = nl.net_name(n);
    for (int b = 0; b < 16; ++b) {
      if (name == "lfsr_s" + std::to_string(b)) state_nets[static_cast<std::size_t>(b)] = n;
    }
  }
  for (std::uint64_t step = 1; step <= 64; ++step) {
    sim.clock_edge();
    EXPECT_EQ(sim.read_word(state_nets), T3Cdma::lfsr_state_after(step)) << "step " << step;
  }
}

TEST(T3, SpreadSignatureLooksPseudoRandom) {
  const auto t3 = std::make_unique<T3Cdma>();
  t3->set_active(true);
  const auto ctx = make_context(0);
  power::CurrentTrace trace{ctx.clock, ctx.num_cycles};
  t3->contribute(ctx, trace);
  // Count chip firings: should be near half the cycles, not clustered.
  std::size_t fired = 0;
  const auto& s = trace.samples();
  for (std::size_t c = 0; c < ctx.num_cycles; ++c) {
    double peak = 0.0;
    for (std::size_t i = 0; i < 8; ++i) peak = std::max(peak, s[c * 8 + i]);
    fired += (peak > 1e-4);
  }
  EXPECT_GT(fired, ctx.num_cycles / 4);
  EXPECT_LT(fired, 3 * ctx.num_cycles / 4);
}

TEST(T4, BankTogglesEveryCycleWhenArmed) {
  const T4PowerHog t4;
  const netlist::Netlist& nl = *t4.gate_netlist();
  netlist::Simulator sim{nl};
  sim.set_input(t4.enable_net(), true);
  sim.settle();
  sim.clock_edge();
  const auto toggles_armed = sim.last_cycle_toggles().size();
  EXPECT_GE(toggles_armed, T4PowerHog::kBankWidth);
}

TEST(T4, UniformSignatureEveryCycle) {
  const auto t4 = std::make_unique<T4PowerHog>();
  t4->set_active(true);
  const auto ctx = make_context(0);
  power::CurrentTrace trace{ctx.clock, ctx.num_cycles};
  t4->contribute(ctx, trace);
  const auto& s = trace.samples();
  // Every cycle carries the same burst (up to deposition rounding).
  double peak = 0.0;
  for (std::size_t i = 0; i < 8; ++i) peak = std::max(peak, std::abs(s[i]));
  for (std::size_t c = 1; c < ctx.num_cycles; ++c) {
    for (std::size_t i = 0; i < 8; ++i) {
      ASSERT_NEAR(s[c * 8 + i], s[i], 1e-6 * peak) << "cycle " << c;
    }
  }
}

TEST(A2, ChargePumpIntegratesAndFires) {
  A2ChargePump pump;
  const double dt = 1.0 / 48e6;
  EXPECT_FALSE(pump.fired());
  // Sustained fast toggling drives the cap over threshold.
  for (int i = 0; i < 100 && !pump.fired(); ++i) pump.step(true, dt);
  EXPECT_TRUE(pump.fired());
  EXPECT_GE(pump.voltage(), pump.params().threshold_v * 0.9);
}

TEST(A2, ChargePumpLeaksWithoutPulses) {
  A2ChargePump pump;
  const double dt = 1.0 / 48e6;
  for (int i = 0; i < 5; ++i) pump.step(true, dt);
  const double v_after_pulses = pump.voltage();
  for (int i = 0; i < 2000; ++i) pump.step(false, dt);
  EXPECT_LT(pump.voltage(), 0.05 * v_after_pulses);
  EXPECT_FALSE(pump.fired());
}

TEST(A2, OccasionalPulsesNeverTrigger) {
  // The A2 security property: normal (slow) activity on the victim wire
  // leaks away before the threshold is reached.
  A2ChargePump pump;
  const double dt = 1.0 / 48e6;
  for (int i = 0; i < 100000; ++i) {
    pump.step(i % 40 == 0, dt);  // sparse pulses
  }
  EXPECT_FALSE(pump.fired());
}

TEST(A2, SaturatesAtVdd) {
  A2ChargePump pump;
  for (int i = 0; i < 10000; ++i) pump.step(true, 1.0 / 48e6);
  EXPECT_LE(pump.voltage(), pump.params().vdd + 1e-12);
}

TEST(A2, RejectsBadParams) {
  A2ChargePump::Params bad{};
  bad.threshold_v = 5.0;  // above vdd
  EXPECT_THROW(A2ChargePump{bad}, emts::precondition_error);
  A2ChargePump::Params neg{};
  neg.leak_tau_s = -1.0;
  EXPECT_THROW(A2ChargePump{neg}, emts::precondition_error);
}

TEST(A2, TriggeringOscillationAt1p5xClock) {
  const auto a2 = std::make_unique<A2Analog>();
  a2->set_active(true);
  const auto ctx = make_context(0);
  power::CurrentTrace trace{ctx.clock, ctx.num_cycles};
  a2->contribute(ctx, trace);
  const auto& s = trace.samples();
  // Count zero crossings: a 72 MHz tone sampled at 384 MS/s over 10.67 us
  // crosses zero ~2 * 72e6 * 10.67e-6 = 1536 times.
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    crossings += (s[i - 1] < 0.0) != (s[i] < 0.0);
  }
  EXPECT_NEAR(static_cast<double>(crossings), 1536.0, 16.0);
}

TEST(A2, DormantContributesNothing) {
  const auto a2 = std::make_unique<A2Analog>();
  const auto ctx = make_context(0);
  power::CurrentTrace trace{ctx.clock, ctx.num_cycles};
  a2->contribute(ctx, trace);
  for (double v : trace.samples()) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace emts::trojan
