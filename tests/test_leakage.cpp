#include "core/leakage.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::core {
namespace {

TraceSet noise_set(std::size_t n, std::size_t len, double mean, std::uint64_t seed) {
  emts::Rng rng{seed};
  TraceSet set;
  set.sample_rate = 1e6;
  for (std::size_t t = 0; t < n; ++t) {
    Trace trace(len);
    for (double& v : trace) v = rng.gaussian(mean, 1.0);
    set.add(trace);
  }
  return set;
}

TEST(Tvla, IdenticalPopulationsDoNotLeak) {
  const auto a = noise_set(100, 64, 0.0, 1);
  const auto b = noise_set(100, 64, 0.0, 2);
  const auto report = tvla(a, b);
  EXPECT_FALSE(report.leaks());
  EXPECT_LT(report.max_abs_t, 4.5);
}

TEST(Tvla, MeanShiftAtOneSampleDetected) {
  auto a = noise_set(200, 64, 0.0, 3);
  const auto b = noise_set(200, 64, 0.0, 4);
  for (Trace& t : a.traces) t[17] += 1.5;  // strong localized leak
  const auto report = tvla(a, b);
  EXPECT_TRUE(report.leaks());
  EXPECT_EQ(report.max_abs_t_sample, 17u);
  EXPECT_GT(report.max_abs_t, 4.5);
}

TEST(Tvla, TStatisticSignFollowsDirection) {
  auto hi = noise_set(200, 8, 0.0, 5);
  const auto lo = noise_set(200, 8, 0.0, 6);
  for (Trace& t : hi.traces) t[3] += 2.0;
  const auto report = tvla(hi, lo);
  EXPECT_GT(report.t_statistic[3], 4.5);  // fixed - random > 0
}

TEST(Tvla, TGrowsWithPopulation) {
  // 16x the traces should raise t by ~4x; accept > 2x to stay robust to the
  // sampling noise of the estimate itself.
  const double shift = 0.4;
  double t_small = 0.0;
  double t_large = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t n = pass == 0 ? 100 : 1600;
    auto a = noise_set(n, 4, 0.0, 7);
    const auto b = noise_set(n, 4, 0.0, 9);
    for (Trace& t : a.traces) t[0] += shift;
    const double t_stat = std::abs(tvla(a, b).t_statistic[0]);
    (pass == 0 ? t_small : t_large) = t_stat;
  }
  EXPECT_GT(t_large, 2.0 * t_small);
}

TEST(Tvla, ConstantSamplesGiveZeroT) {
  TraceSet a;
  a.sample_rate = 1e6;
  TraceSet b;
  b.sample_rate = 1e6;
  for (int i = 0; i < 4; ++i) {
    a.add(Trace{1.0, 1.0});
    b.add(Trace{1.0, 1.0});
  }
  const auto report = tvla(a, b);
  EXPECT_DOUBLE_EQ(report.t_statistic[0], 0.0);
  EXPECT_FALSE(report.leaks());
}

TEST(Tvla, CustomThresholdRespected) {
  auto a = noise_set(100, 8, 0.0, 11);
  const auto b = noise_set(100, 8, 0.0, 12);
  for (Trace& t : a.traces) t[1] += 0.8;
  const auto strict = tvla(a, b, 1e6);
  EXPECT_FALSE(strict.leaks());
  const auto loose = tvla(a, b, 2.0);
  EXPECT_TRUE(loose.leaks());
}

TEST(Tvla, RejectsBadInputs) {
  const auto ok = noise_set(4, 8, 0.0, 13);
  TraceSet one;
  one.sample_rate = 1e6;
  one.add(Trace(8, 0.0));
  EXPECT_THROW(tvla(one, ok), emts::precondition_error);
  const auto other_len = noise_set(4, 16, 0.0, 14);
  EXPECT_THROW(tvla(ok, other_len), emts::precondition_error);
  EXPECT_THROW(tvla(ok, ok, 0.0), emts::precondition_error);
}

}  // namespace
}  // namespace emts::core
