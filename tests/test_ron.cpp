#include "baseline/ron.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace emts::baseline {
namespace {

sim::Chip& chip() {
  static sim::Chip instance{sim::make_default_config()};
  instance.disarm_all();
  return instance;
}

RonNetwork network() { return RonNetwork{RonSpec{}, chip().config().die}; }

TEST(RonNetwork, PlacesAGridOfOscillators) {
  const auto ron = network();
  EXPECT_EQ(ron.oscillator_count(), 16u);
  const auto& die = chip().config().die;
  for (const auto& p : ron.positions()) {
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, die.core_width);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, die.core_height);
  }
}

TEST(RonNetwork, RejectsDegenerateSpecs) {
  RonSpec bad{};
  bad.rows = 0;
  EXPECT_THROW(RonNetwork(bad, chip().config().die), emts::precondition_error);
  bad = RonSpec{};
  bad.window_s = 0.0;
  EXPECT_THROW(RonNetwork(bad, chip().config().die), emts::precondition_error);
}

TEST(RonNetwork, LoadSlowsTheOscillators) {
  const auto ron = network();
  Rng rng{1};
  const auto idle = ron.measure(chip(), false, 0, rng);
  const auto busy = ron.measure(chip(), true, 0, rng);
  ASSERT_EQ(idle.size(), busy.size());
  // The encrypting chip draws more current -> lower counts on average.
  double idle_sum = 0.0;
  double busy_sum = 0.0;
  for (std::size_t o = 0; o < idle.size(); ++o) {
    idle_sum += idle[o];
    busy_sum += busy[o];
  }
  EXPECT_LT(busy_sum, idle_sum);
}

TEST(RonNetwork, NearbyOscillatorsDroopMore) {
  // T4 sits in the lower-right quadrant: with T4 armed, the RO closest to it
  // must lose more cycles than the farthest RO.
  const auto ron = network();
  sim::Chip& c = chip();
  Rng rng_a{2};
  Rng rng_b{2};
  const auto golden = ron.measure(c, true, 1, rng_a);
  c.arm(trojan::TrojanKind::kT4PowerHog);
  const auto infected = ron.measure(c, true, 1, rng_b);
  c.disarm_all();

  const auto& t4 = c.floorplan().module(layout::module_names::kTrojan4);
  std::size_t nearest = 0;
  std::size_t farthest = 0;
  double dmin = 1e300;
  double dmax = -1.0;
  for (std::size_t o = 0; o < ron.oscillator_count(); ++o) {
    const double dx = ron.positions()[o].x - t4.region.cx();
    const double dy = ron.positions()[o].y - t4.region.cy();
    const double d = dx * dx + dy * dy;
    if (d < dmin) {
      dmin = d;
      nearest = o;
    }
    if (d > dmax) {
      dmax = d;
      farthest = o;
    }
  }
  const double droop_near = golden[nearest] - infected[nearest];
  const double droop_far = golden[farthest] - infected[farthest];
  EXPECT_GT(droop_near, droop_far);
}

TEST(RonDetector, CalibrationAndGoldenReadingsCalm) {
  const auto ron = network();
  Rng rng{3};
  std::vector<RonReading> golden;
  for (std::uint64_t t = 0; t < 20; ++t) golden.push_back(ron.measure(chip(), true, t, rng));
  const RonDetector detector{golden};
  std::size_t alarms = 0;
  for (std::uint64_t t = 100; t < 120; ++t) {
    alarms += detector.is_anomalous(ron.measure(chip(), true, t, rng));
  }
  EXPECT_LE(alarms, 2u);
}

TEST(RonDetector, CatchesTheBigPowerHog) {
  // T4 is exactly what RON was designed for: a large always-on load.
  const auto ron = network();
  sim::Chip& c = chip();
  Rng rng{4};
  std::vector<RonReading> golden;
  for (std::uint64_t t = 0; t < 20; ++t) golden.push_back(ron.measure(c, true, t, rng));
  const RonDetector detector{golden};

  c.arm(trojan::TrojanKind::kT4PowerHog);
  const auto reading = ron.measure(c, true, 200, rng);
  c.disarm_all();
  EXPECT_TRUE(detector.is_anomalous(reading));
}

TEST(RonDetector, MissesTheA2Trigger) {
  // The low-coverage problem (paper Sec. I): A2's sub-milliamp oscillation
  // barely moves any RO's average load.
  const auto ron = network();
  sim::Chip& c = chip();
  Rng rng{5};
  std::vector<RonReading> golden;
  for (std::uint64_t t = 0; t < 20; ++t) golden.push_back(ron.measure(c, true, t, rng));
  const RonDetector detector{golden};

  c.arm(trojan::TrojanKind::kA2Analog);
  std::size_t alarms = 0;
  for (std::uint64_t t = 300; t < 310; ++t) {
    alarms += detector.is_anomalous(ron.measure(c, true, t, rng));
  }
  c.disarm_all();
  EXPECT_LE(alarms, 2u) << "RON should be (nearly) blind to A2";
}

TEST(RonDetector, RejectsBadInputs) {
  EXPECT_THROW(RonDetector(std::vector<RonReading>{{1.0}}, 4.0), emts::precondition_error);
  const auto ron = network();
  Rng rng{6};
  std::vector<RonReading> golden;
  for (std::uint64_t t = 0; t < 5; ++t) golden.push_back(ron.measure(chip(), true, t, rng));
  const RonDetector detector{golden};
  EXPECT_THROW(detector.max_z(RonReading(3, 0.0)), emts::precondition_error);
}

}  // namespace
}  // namespace emts::baseline
