#include "io/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace emts::io::wire {
namespace {

core::Trace ramp_trace(std::size_t n, double offset = 0.0) {
  core::Trace t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = offset + 0.25 * static_cast<double>(i);
  return t;
}

std::string encode(const std::string& id, double rate, const core::Trace& trace) {
  std::string out;
  encode_trace_frame(id, rate, trace.data(), trace.size(), out);
  return out;
}

/// Recomputes and patches the payload checksum after a corruption, so the
/// test exercises the *structural* validation, not the checksum.
void fix_checksum(std::string& frame) {
  std::uint32_t payload_size = 0;
  std::memcpy(&payload_size, frame.data() + 8, sizeof payload_size);
  const std::uint64_t sum = util::fnv1a64(frame.data() + 12, payload_size);
  std::memcpy(frame.data() + 12 + payload_size, &sum, sizeof sum);
}

TEST(WireFrame, RoundTripsBitIdentically) {
  const core::Trace trace = ramp_trace(257, 1.5);
  const std::string bytes = encode("chip-07", 384e6, trace);
  EXPECT_EQ(bytes.size(), kFrameOverhead + 4 + 7 + 8 + 4 + 257 * 8);

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.device_id, "chip-07");
  EXPECT_EQ(frame.sample_rate, 384e6);
  ASSERT_EQ(frame.trace.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) EXPECT_EQ(frame.trace[i], trace[i]);
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

TEST(WireFrame, StructRoundTrip) {
  TraceFrame in;
  in.device_id = "sensor-array-3";
  in.sample_rate = 1e9;
  in.trace = ramp_trace(64);
  std::string bytes;
  encode_trace_frame(in, bytes);

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame out;
  ASSERT_TRUE(decoder.next(out));
  EXPECT_EQ(out.device_id, in.device_id);
  EXPECT_EQ(out.sample_rate, in.sample_rate);
  EXPECT_EQ(out.trace, in.trace);
}

TEST(WireFrame, DecoderReassemblesByteAtATime) {
  // A socket can deliver any fragmentation; the decoder must be agnostic.
  const std::string bytes =
      encode("a", 48e6, ramp_trace(31)) + encode("b", 48e6, ramp_trace(33, 5.0));
  FrameDecoder decoder;
  std::vector<TraceFrame> frames;
  TraceFrame frame;
  for (const char byte : bytes) {
    decoder.feed(&byte, 1);
    while (decoder.next(frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].device_id, "a");
  EXPECT_EQ(frames[0].trace.size(), 31u);
  EXPECT_EQ(frames[1].device_id, "b");
  EXPECT_EQ(frames[1].trace[0], 5.0);
}

TEST(WireFrame, ManyFramesOneFeedAndBufferStaysBounded) {
  std::string bytes;
  for (int i = 0; i < 200; ++i) {
    encode_trace_frame("dev", 1e6, ramp_trace(16).data(), 16, bytes);
  }
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  int decoded = 0;
  while (decoder.next(frame)) ++decoded;
  EXPECT_EQ(decoded, 200);

  // Feeding more after full consumption compacts; the buffer must not
  // accumulate the whole session.
  const std::string one = encode("dev", 1e6, ramp_trace(16));
  decoder.feed(one.data(), one.size());
  EXPECT_LE(decoder.buffered(), one.size());
  EXPECT_TRUE(decoder.next(frame));
}

TEST(WireFrame, PartialFrameIsNotAFrame) {
  const std::string bytes = encode("chip", 1e6, ramp_trace(64));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);  // everything but the last byte
  TraceFrame frame;
  EXPECT_FALSE(decoder.next(frame));
  decoder.feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_TRUE(decoder.next(frame));
}

TEST(WireFrame, EncodeRejectsBadInput) {
  std::string out;
  const core::Trace trace = ramp_trace(8);
  EXPECT_THROW(encode_trace_frame("", 1e6, trace.data(), trace.size(), out),
               emts::precondition_error);
  EXPECT_THROW(encode_trace_frame("dev", 1e6, trace.data(), 0, out),
               emts::precondition_error);
  EXPECT_THROW(encode_trace_frame("dev", -1.0, trace.data(), trace.size(), out),
               emts::precondition_error);
  EXPECT_THROW(encode_trace_frame("dev", 0.0, trace.data(), trace.size(), out),
               emts::precondition_error);
  EXPECT_THROW(encode_trace_frame(std::string(5000, 'x'), 1e6, trace.data(), trace.size(), out),
               emts::precondition_error);
}

TEST(WireFrame, BadMagicThrows) {
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireFrame, UnsupportedVersionThrows) {
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  bytes[4] = 2;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireFrame, UnknownTypeThrows) {
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  bytes[5] = 9;
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireFrame, AbsurdPayloadSizeRejectedBeforeBuffering) {
  // A header claiming a payload beyond the cap must throw immediately from
  // the 12 header bytes alone — no waiting for (or allocating) gigabytes.
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  const std::uint32_t absurd = kMaxFramePayload + 1;
  std::memcpy(bytes.data() + 8, &absurd, sizeof absurd);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), 12);
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireFrame, ChecksumMismatchThrows) {
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  bytes[20] ^= 0x01;  // flip one payload bit, leave the checksum stale
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireFrame, SampleCountDisagreeingWithPayloadThrows) {
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  // Overwrite the sample count (after u32 id_len + 3-byte id + f64 rate).
  const std::size_t count_offset = 12 + 4 + 3 + 8;
  const std::uint32_t wrong = 9;
  std::memcpy(bytes.data() + count_offset, &wrong, sizeof wrong);
  fix_checksum(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireFrame, NonPositiveSampleRateThrows) {
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  const double bad = -5.0;
  std::memcpy(bytes.data() + 12 + 4 + 3, &bad, sizeof bad);
  fix_checksum(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireHello, RoundTripsThroughGenericDecode) {
  std::string bytes;
  encode_hello_frame("sesame-123", bytes);

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.kind, FrameKind::kHello);
  EXPECT_EQ(frame.auth_token, "sesame-123");
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

TEST(WireHello, InterleavesWithTraceFramesByteAtATime) {
  // The auth handshake rides the same stream as the traffic it unlocks, and
  // the transport may fragment it anywhere.
  std::string bytes;
  encode_hello_frame("token", bytes);
  bytes += encode("dev", 1e6, ramp_trace(16));

  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame frame;
  for (const char byte : bytes) {
    decoder.feed(&byte, 1);
    while (decoder.next(frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].kind, FrameKind::kHello);
  EXPECT_EQ(frames[0].auth_token, "token");
  EXPECT_EQ(frames[1].kind, FrameKind::kTrace);
  EXPECT_EQ(frames[1].trace.device_id, "dev");
  EXPECT_EQ(frames[1].trace.trace.size(), 16u);
}

TEST(WireHello, TraceOnlyDecodeRejectsHello) {
  // Benches and replay paths speak the trace-only dialect; a HELLO there is
  // a protocol violation, not a frame to skip silently.
  std::string bytes;
  encode_hello_frame("token", bytes);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireHello, EncodeRejectsBadTokens) {
  std::string out;
  EXPECT_THROW(encode_hello_frame("", out), emts::precondition_error);
  EXPECT_THROW(encode_hello_frame(std::string(kMaxAuthTokenBytes + 1, 'x'), out),
               emts::precondition_error);
}

TEST(WireHello, TokenLengthDisagreeingWithPayloadThrows) {
  std::string bytes;
  encode_hello_frame("abcdef", bytes);
  const std::uint32_t wrong = 3;  // plausible, but short of the payload size
  std::memcpy(bytes.data() + 12, &wrong, sizeof wrong);
  fix_checksum(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

TEST(WireFrame, DeviceIdLengthBeyondPayloadThrows) {
  std::string bytes = encode("dev", 1e6, ramp_trace(8));
  const std::uint32_t wrong = 4096;  // within the id cap, beyond this payload
  std::memcpy(bytes.data() + 12, &wrong, sizeof wrong);
  fix_checksum(bytes);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  TraceFrame frame;
  EXPECT_THROW(decoder.next(frame), emts::precondition_error);
}

}  // namespace
}  // namespace emts::io::wire
