#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace emts::dsp {
namespace {

TEST(FftHelpers, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1000));
}

TEST(FftHelpers, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<cplx> data(8, cplx{0, 0});
  data[0] = cplx{1, 0};
  fft_in_place(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantSignalHasOnlyDc) {
  std::vector<cplx> data(16, cplx{2.5, 0});
  fft_in_place(data);
  EXPECT_NEAR(data[0].real(), 40.0, 1e-10);
  for (std::size_t k = 1; k < data.size(); ++k) EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-10);
}

TEST(Fft, SingleToneLandsInItsBin) {
  const std::size_t n = 256;
  const std::size_t tone_bin = 19;
  std::vector<cplx> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        2.0 * units::pi * static_cast<double>(tone_bin * i) / static_cast<double>(n);
    data[i] = cplx{std::cos(phase), 0.0};
  }
  fft_in_place(data);
  // cos tone of amplitude 1 -> N/2 in bins +/- tone.
  EXPECT_NEAR(std::abs(data[tone_bin]), static_cast<double>(n) / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(data[n - tone_bin]), static_cast<double>(n) / 2.0, 1e-8);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone_bin || k == n - tone_bin) continue;
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-8);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cplx> data(12);
  EXPECT_THROW(fft_in_place(data), emts::precondition_error);
}

TEST(Fft, LinearityHolds) {
  emts::Rng rng{314};
  const std::size_t n = 64;
  std::vector<cplx> a(n);
  std::vector<cplx> b(n);
  std::vector<cplx> combo(n);
  const cplx alpha{2.0, -1.0};
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = cplx{rng.gaussian(), rng.gaussian()};
    b[i] = cplx{rng.gaussian(), rng.gaussian()};
    combo[i] = alpha * a[i] + b[i];
  }
  fft_in_place(a);
  fft_in_place(b);
  fft_in_place(combo);
  for (std::size_t k = 0; k < n; ++k) {
    const cplx expected = alpha * a[k] + b[k];
    EXPECT_NEAR(std::abs(combo[k] - expected), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConserved) {
  emts::Rng rng{2718};
  const std::size_t n = 512;
  std::vector<cplx> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = cplx{rng.gaussian(), 0.0};
    time_energy += std::norm(x);
  }
  fft_in_place(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6 * time_energy);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  emts::Rng rng{emts::mix64(n)};
  std::vector<cplx> original(n);
  for (auto& x : original) x = cplx{rng.gaussian(), rng.gaussian()};
  auto data = original;
  fft_in_place(data);
  ifft_in_place(data);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values<std::size_t>(1, 2, 4, 8, 64, 1024, 4096));

TEST(FftReal, ZeroPadsToPowerOfTwo) {
  const std::vector<double> sig(100, 1.0);
  const auto spec = fft_real(sig);
  EXPECT_EQ(spec.size(), 128u);
  EXPECT_NEAR(spec[0].real(), 100.0, 1e-10);
}

TEST(FftReal, RealInputHasConjugateSymmetry) {
  emts::Rng rng{99};
  std::vector<double> sig(128);
  for (double& v : sig) v = rng.gaussian();
  const auto spec = fft_real(sig);
  const std::size_t n = spec.size();
  for (std::size_t k = 1; k < n / 2; ++k) {
    EXPECT_NEAR(spec[k].real(), spec[n - k].real(), 1e-9);
    EXPECT_NEAR(spec[k].imag(), -spec[n - k].imag(), 1e-9);
  }
}

TEST(FftReal, RejectsEmptyInput) {
  EXPECT_THROW(fft_real({}), emts::precondition_error);
}

TEST(IfftReal, RoundTripsRealSignal) {
  emts::Rng rng{321};
  std::vector<double> sig(256);
  for (double& v : sig) v = rng.gaussian();
  const auto back = ifft_real(fft_real(sig));
  ASSERT_EQ(back.size(), 256u);
  for (std::size_t i = 0; i < sig.size(); ++i) EXPECT_NEAR(back[i], sig[i], 1e-9);
}

// The plan caches twiddles generated with the exact recurrence fft_in_place
// uses, so the two paths must agree to the last bit — the monitor swaps
// between them and scores may not move by even one ULP.
TEST(FftPlan, ForwardMatchesOneShotFftBitwise) {
  emts::Rng rng{314};
  for (std::size_t n : {1u, 2u, 8u, 64u, 1024u}) {
    std::vector<cplx> reference(n);
    for (auto& x : reference) x = cplx{rng.gaussian(), rng.gaussian()};
    std::vector<cplx> planned = reference;

    fft_in_place(reference);
    const FftPlan plan{n};
    EXPECT_EQ(plan.size(), n);
    plan.forward(planned);

    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(planned[k].real(), reference[k].real()) << "n=" << n << " bin " << k;
      EXPECT_EQ(planned[k].imag(), reference[k].imag()) << "n=" << n << " bin " << k;
    }
  }
}

TEST(FftPlan, RejectsBadSizes) {
  EXPECT_THROW(FftPlan{0}, emts::precondition_error);
  EXPECT_THROW(FftPlan{3}, emts::precondition_error);
  const FftPlan plan{8};
  std::vector<cplx> wrong(4);
  EXPECT_THROW(plan.forward(wrong), emts::precondition_error);
}

TEST(FftPlan, IsReusableAcrossTransforms) {
  const FftPlan plan{16};
  std::vector<cplx> first(16, cplx{1.0, 0.0});
  std::vector<cplx> second = first;
  plan.forward(first);
  plan.forward(second);
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(first[k].real(), second[k].real());
    EXPECT_EQ(first[k].imag(), second[k].imag());
  }
}

}  // namespace
}  // namespace emts::dsp
