#include "sim/chip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/silicon.hpp"
#include "stats/descriptive.hpp"
#include "stats/snr.hpp"
#include "util/assert.hpp"

namespace emts::sim {
namespace {

// One shared chip: construction computes couplings, so reuse across tests.
Chip& shared_chip() {
  static Chip chip{make_default_config()};
  chip.disarm_all();
  return chip;
}

TEST(Chip, DefaultConfigIsSelfConsistent) {
  const ChipConfig config = make_default_config();
  EXPECT_DOUBLE_EQ(config.clock.frequency, 48e6);
  EXPECT_EQ(config.trace_cycles * config.clock.samples_per_cycle, 4096u);
  EXPECT_GT(config.onchip_chain.gain, 0.0);
  // On-chip sensor must pick up less ambient than the open-air probe.
  EXPECT_LT(config.onchip_noise.environment_pickup, config.external_noise.environment_pickup);
}

TEST(Chip, CaptureShapesMatchConfig) {
  Chip& chip = shared_chip();
  const auto acq = chip.capture(true, 1);
  EXPECT_EQ(acq.onchip_v.size(), chip.samples_per_trace());
  EXPECT_EQ(acq.external_v.size(), chip.samples_per_trace());
  EXPECT_EQ(acq.of(Pickup::kOnChipSensor).size(), acq.onchip_v.size());
}

TEST(Chip, CapturesAreReproduciblePerTraceIndex) {
  Chip& chip = shared_chip();
  const auto a = chip.capture(true, 42);
  const auto b = chip.capture(true, 42);
  for (std::size_t i = 0; i < a.onchip_v.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.onchip_v[i], b.onchip_v[i]);
    ASSERT_DOUBLE_EQ(a.external_v[i], b.external_v[i]);
  }
}

TEST(Chip, DifferentTraceIndicesDiffer) {
  Chip& chip = shared_chip();
  const auto a = chip.capture(true, 1);
  const auto b = chip.capture(true, 2);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.onchip_v.size(); ++i) {
    diff += std::abs(a.onchip_v[i] - b.onchip_v[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Chip, EncryptingIsLouderThanIdle) {
  Chip& chip = shared_chip();
  const auto active = chip.capture(true, 5);
  const auto idle = chip.capture(false, 6);
  EXPECT_GT(stats::rms(active.onchip_v), 3.0 * stats::rms(idle.onchip_v));
}

TEST(Chip, ArmDisarmBookkeeping) {
  Chip& chip = shared_chip();
  chip.arm(trojan::TrojanKind::kT2Leakage);
  EXPECT_TRUE(chip.is_armed(trojan::TrojanKind::kT2Leakage));
  EXPECT_FALSE(chip.is_armed(trojan::TrojanKind::kT1AmLeak));
  chip.arm(trojan::TrojanKind::kT1AmLeak);  // arming another swaps
  EXPECT_FALSE(chip.is_armed(trojan::TrojanKind::kT2Leakage));
  chip.disarm_all();
  for (auto kind : trojan::kAllTrojanKinds) EXPECT_FALSE(chip.is_armed(kind));
}

TEST(Chip, ArmedTrojanChangesTheTrace) {
  Chip& chip = shared_chip();
  const auto golden = chip.capture(true, 9);
  chip.arm(trojan::TrojanKind::kT4PowerHog);
  const auto infected = chip.capture(true, 9);
  chip.disarm_all();
  double delta = 0.0;
  for (std::size_t i = 0; i < golden.onchip_v.size(); ++i) {
    delta += std::abs(golden.onchip_v[i] - infected.onchip_v[i]);
  }
  EXPECT_GT(delta, 1e-3);
}

TEST(Chip, OnChipSnrBeatsExternalByAbout12dB) {
  // The Sec. IV-B headline: ~29.98 dB on-chip vs ~17.48 dB external.
  Chip& chip = shared_chip();
  auto collect = [&](bool enc, std::uint64_t base, Pickup p) {
    std::vector<double> all;
    for (std::uint64_t t = 0; t < 6; ++t) {
      const auto acq = chip.capture(enc, base + t);
      const auto& v = acq.of(p);
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };
  const double snr_on = stats::snr_db(collect(true, 300, Pickup::kOnChipSensor),
                                      collect(false, 400, Pickup::kOnChipSensor));
  const double snr_ex = stats::snr_db(collect(true, 300, Pickup::kExternalProbe),
                                      collect(false, 400, Pickup::kExternalProbe));
  EXPECT_GT(snr_on, 26.0);
  EXPECT_LT(snr_on, 34.0);
  EXPECT_GT(snr_ex, 14.0);
  EXPECT_LT(snr_ex, 21.0);
  EXPECT_GT(snr_on - snr_ex, 8.0);
}

TEST(Chip, CouplingLookupMatchesFloorplan) {
  Chip& chip = shared_chip();
  for (const auto& m : chip.floorplan().modules()) {
    EXPECT_NE(chip.coupling(m.name, Pickup::kOnChipSensor), 0.0) << m.name;
  }
  EXPECT_THROW(chip.coupling("nonexistent", Pickup::kOnChipSensor), emts::precondition_error);
}

TEST(Chip, OnChipCouplingsBeatExternalForTrojans) {
  // The sensor sits microns above the Trojans; the probe 100 um above the
  // package. Stronger coupling is the physical root of the SNR advantage.
  Chip& chip = shared_chip();
  namespace mn = layout::module_names;
  for (const char* name : {mn::kTrojan1, mn::kTrojan2, mn::kTrojan3, mn::kTrojan4}) {
    EXPECT_GT(std::abs(chip.coupling(name, Pickup::kOnChipSensor)),
              std::abs(chip.coupling(name, Pickup::kExternalProbe)))
        << name;
  }
}

TEST(Chip, RawEmfIsNoiseFree) {
  Chip& chip = shared_chip();
  const auto a = chip.raw_emf(Pickup::kOnChipSensor, true, 7);
  const auto b = chip.raw_emf(Pickup::kOnChipSensor, true, 7);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
  EXPECT_GT(stats::rms(a), 0.0);
}

TEST(Chip, TrojanModelAccessors) {
  Chip& chip = shared_chip();
  EXPECT_EQ(chip.trojan_model(trojan::TrojanKind::kT3Cdma).cell_count(), 250u);
  EXPECT_EQ(chip.trojan_model(trojan::TrojanKind::kA2Analog).cell_count(), 0u);
}

TEST(Chip, RejectsTooShortWindow) {
  ChipConfig config = make_default_config();
  config.trace_cycles = 4;  // shorter than one encryption
  EXPECT_THROW(Chip{config}, emts::precondition_error);
}

TEST(Chip, FixedWorkloadRepeatsAesActivityAcrossTraces) {
  // With the fixed challenge workload, the AES contribution is identical in
  // every window; only noise and Trojan phase differ. Compare noise-free emf.
  Chip& chip = shared_chip();
  const auto a = chip.raw_emf(Pickup::kOnChipSensor, true, 11);
  const auto b = chip.raw_emf(Pickup::kOnChipSensor, true, 12);
  // Trojans are dormant (tiny deterministic contribution), so emf should be
  // nearly identical.
  double max_delta = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_delta = std::max(max_delta, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(max_delta, 1e-3 * stats::rms(a));
}

TEST(Silicon, ConfigAddsLabEffectsToExternalProbe) {
  const ChipConfig silicon = make_silicon_config(SiliconOptions{});
  const ChipConfig clean = make_default_config();
  EXPECT_FALSE(silicon.external_noise.tones.empty());
  EXPECT_TRUE(clean.external_noise.tones.empty());
  EXPECT_GT(silicon.external_noise.drift_rms_v, 0.0);
  EXPECT_GT(silicon.external_noise.environment_rms_v, clean.external_noise.environment_rms_v);
}

TEST(Silicon, ChipSerialsGiveDifferentProcessCorners) {
  SiliconOptions a{};
  a.chip_serial = 1;
  SiliconOptions b{};
  b.chip_serial = 2;
  const ChipConfig ca = make_silicon_config(a);
  const ChipConfig cb = make_silicon_config(b);
  EXPECT_NE(ca.die.cell_z, cb.die.cell_z);
}

TEST(Silicon, SameSerialIsReproducible) {
  SiliconOptions opt{};
  opt.chip_serial = 5;
  const ChipConfig a = make_silicon_config(opt);
  const ChipConfig b = make_silicon_config(opt);
  EXPECT_DOUBLE_EQ(a.die.cell_z, b.die.cell_z);
  EXPECT_DOUBLE_EQ(a.die.grid_z, b.die.grid_z);
}

TEST(Silicon, RejectsImplausibleOptions) {
  SiliconOptions bad{};
  bad.process_sigma = 0.5;
  EXPECT_THROW(make_silicon_config(bad), emts::precondition_error);
  SiliconOptions quiet{};
  quiet.lab_ambient_factor = 0.5;
  EXPECT_THROW(make_silicon_config(quiet), emts::precondition_error);
}

TEST(Silicon, StackOrderSurvivesProcessVariation) {
  for (std::uint64_t serial = 1; serial <= 20; ++serial) {
    SiliconOptions opt{};
    opt.chip_serial = serial;
    const ChipConfig config = make_silicon_config(opt);
    EXPECT_LT(config.die.cell_z, config.die.grid_z) << serial;
    EXPECT_LT(config.die.grid_z, config.die.sensor_z) << serial;
  }
}

}  // namespace
}  // namespace emts::sim
