#include "util/assert.hpp"

#include <gtest/gtest.h>

namespace emts {
namespace {

TEST(Require, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(EMTS_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Require, FailingConditionThrowsPreconditionError) {
  EXPECT_THROW(EMTS_REQUIRE(false, "must fail"), precondition_error);
}

TEST(Require, MessageAndExpressionAreReported) {
  try {
    EMTS_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
  }
}

TEST(Require, PreconditionErrorIsInvalidArgument) {
  EXPECT_THROW(EMTS_REQUIRE(false, "x"), std::invalid_argument);
}

TEST(Assert, PassingAssertDoesNotAbort) {
  EMTS_ASSERT(true);
  SUCCEED();
}

TEST(AssertDeathTest, FailingAssertAborts) {
  EXPECT_DEATH(EMTS_ASSERT(false), "invariant violated");
}

}  // namespace
}  // namespace emts
